// Package faults is a seeded, deterministic fault-injection layer usable
// from both transport substrates: the discrete-event simulator
// (internal/netsim, via a link fault hook) and the live UDP path
// (internal/live, via a PacketConn middleware). One Plan drives both, so a
// chaos scenario — burst loss, reorder windows, duplication, bit
// corruption, link flaps, relay crashes — expressed once runs identically
// against the simulated network and real sockets.
//
// Determinism is the point: every per-packet decision consumes a fixed
// number of draws from a seeded RNG, so the fault schedule is a pure
// function of (seed, packet index). The same seed therefore reproduces the
// same failure on either substrate, which is what makes chaos-test
// regressions debuggable (the Steinbeck fault-tolerant DAQ framework makes
// the same argument for deterministic failure replay).
//
// Burst loss follows the two-state Gilbert model: in the good state
// packets pass, in the bad state every packet drops, and the transition
// probabilities are derived from the target stationary loss fraction and
// mean burst length. Link flaps are scripted windows on the elapsed clock
// (virtual time in the simulator, wall time since Plan creation on the
// live path) during which everything drops.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Counter names recorded by a Plan into its telemetry.CounterSet. The
// recovery-side names (telemetry.CounterRecovered and friends) are shared
// with internal/live and internal/core so one set shows injected faults
// next to their recoveries.
const (
	CounterDropBurst    = "inject.drop.burst"
	CounterDropScripted = "inject.drop.scripted"
	CounterDropFlap     = "inject.drop.flap"
	CounterCorrupt      = "inject.corrupt"
	CounterDuplicate    = "inject.duplicate"
	CounterReorder      = "inject.reorder"
)

// Flap is a scripted link-down window on the elapsed clock: every packet
// offered in [Start, Start+Len) is dropped.
type Flap struct {
	Start time.Duration
	Len   time.Duration
}

func (f Flap) contains(elapsed time.Duration) bool {
	return elapsed >= f.Start && elapsed < f.Start+f.Len
}

// IndexWindow is a scripted link-down window in packet-index space: every
// packet whose 1-based index i satisfies From ≤ i ≤ To is dropped. Unlike
// Flaps, which consult the substrate's elapsed clock (wall time on the
// live path), index windows depend only on the offered-packet count, so
// the same window drops the same packets on both substrates — the form
// the differential conformance scenarios and the campaign runner use.
type IndexWindow struct {
	From, To uint64
}

func (w IndexWindow) contains(idx uint64) bool {
	return idx >= w.From && idx <= w.To
}

// Spec declares a fault schedule. The zero value injects nothing.
type Spec struct {
	// Seed drives every probabilistic decision. Two Plans with equal
	// Spec produce identical per-packet schedules.
	Seed int64

	// BurstLoss is the target stationary loss fraction of the Gilbert
	// burst-loss process (e.g. 0.10 for 10% loss in bursts). Zero
	// disables burst loss.
	BurstLoss float64
	// MeanBurstLen is the expected number of consecutive drops per burst;
	// zero means 3 (the classic "3-packet burst" regime).
	MeanBurstLen float64

	// ReorderProb delays a packet by ReorderDelay, letting later packets
	// overtake it — the reorder-window condition NAK delay exists for.
	ReorderProb float64
	// ReorderDelay is how much later a reordered packet is delivered;
	// zero means 1 ms (≈ several packets at DAQ rates).
	ReorderDelay time.Duration

	// DupProb delivers a packet twice.
	DupProb float64

	// CorruptProb flips one payload bit, modelling in-flight corruption
	// that survives to the receiver (or is caught by its header check).
	CorruptProb float64

	// Flaps are scripted link-down windows.
	Flaps []Flap

	// DropWindows are scripted link-down windows in packet-index space,
	// counted as flap drops. They are the substrate-deterministic form of
	// Flaps: the live path's elapsed clock is wall time, so only index
	// windows reproduce identically there.
	DropWindows []IndexWindow

	// DropPackets drops the listed 1-based packet indices outright —
	// exact scripted losses for table-driven tests.
	DropPackets []uint64

	// DupPackets duplicates the listed 1-based packet indices — exact
	// scripted duplication for table-driven differential tests.
	DupPackets []uint64
}

func (s Spec) withDefaults() Spec {
	if s.MeanBurstLen == 0 {
		s.MeanBurstLen = 3
	}
	if s.ReorderDelay == 0 {
		s.ReorderDelay = time.Millisecond
	}
	return s
}

// Decision is the verdict for one offered packet.
type Decision struct {
	// Drop discards the packet; Kind names the counter that recorded it.
	Drop bool
	Kind string
	// Duplicate delivers the packet a second time.
	Duplicate bool
	// CorruptBit, when ≥ 0, is raw entropy for choosing which bit to
	// flip; apply it modulo the packet's bit length (FlipBit does).
	CorruptBit int
	// Delay postpones delivery, reordering the packet past its
	// successors.
	Delay time.Duration
}

// Plan is an instantiated fault schedule. It is safe for concurrent use:
// the live path consults it from multiple goroutines, the simulator from
// its single event-loop goroutine.
type Plan struct {
	spec Spec

	mu      sync.Mutex
	rng     *rand.Rand
	bad     bool // Gilbert state
	pToBad  float64
	pToGood float64
	packets uint64
	drops   map[uint64]bool
	dups    map[uint64]bool

	counters *telemetry.CounterSet
}

// New builds a Plan from spec.
func New(spec Spec) *Plan {
	spec = spec.withDefaults()
	p := &Plan{
		spec:     spec,
		rng:      rand.New(rand.NewSource(spec.Seed)),
		drops:    make(map[uint64]bool, len(spec.DropPackets)),
		dups:     make(map[uint64]bool, len(spec.DupPackets)),
		counters: telemetry.NewCounterSet(),
	}
	for _, idx := range spec.DropPackets {
		p.drops[idx] = true
	}
	for _, idx := range spec.DupPackets {
		p.dups[idx] = true
	}
	// Gilbert transitions: P(bad→good) = 1/meanBurstLen; solve
	// P(good→bad) so the stationary bad fraction equals BurstLoss.
	p.pToGood = 1 / spec.MeanBurstLen
	if l := spec.BurstLoss; l > 0 && l < 1 {
		p.pToBad = p.pToGood * l / (1 - l)
	} else if l >= 1 {
		p.pToBad = 1
		p.pToGood = 0
	}
	return p
}

// Counters exposes the plan's fault counters; recovery-side components may
// record into the same set so injections and recoveries read side by side.
func (p *Plan) Counters() *telemetry.CounterSet { return p.counters }

// Packets returns how many packets the plan has judged so far.
func (p *Plan) Packets() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.packets
}

// Decide judges the next offered packet. elapsed is the substrate clock:
// virtual time in the simulator, time since start on the live path; only
// scripted Flaps consult it — every probabilistic decision depends solely
// on (seed, packet index), keeping schedules identical across substrates.
func (p *Plan) Decide(elapsed time.Duration) Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.packets++

	// Fixed draw order and count per packet: burst transition, corrupt,
	// duplicate, reorder, corrupt-bit entropy. Never early-return before
	// all draws, or later packets' decisions would shift.
	trans := p.rng.Float64()
	cDraw := p.rng.Float64()
	dDraw := p.rng.Float64()
	rDraw := p.rng.Float64()
	bit := p.rng.Intn(1 << 20)

	if p.bad {
		if trans < p.pToGood {
			p.bad = false
		}
	} else if trans < p.pToBad {
		p.bad = true
	}

	d := Decision{CorruptBit: -1}
	switch {
	case p.drops[p.packets]:
		d.Drop, d.Kind = true, CounterDropScripted
	case p.windowed(p.packets):
		d.Drop, d.Kind = true, CounterDropFlap
	case p.flapped(elapsed):
		d.Drop, d.Kind = true, CounterDropFlap
	case p.bad && p.spec.BurstLoss > 0:
		d.Drop, d.Kind = true, CounterDropBurst
	}
	if d.Drop {
		p.counters.Inc(d.Kind)
		return d
	}
	if p.spec.CorruptProb > 0 && cDraw < p.spec.CorruptProb {
		d.CorruptBit = bit
		p.counters.Inc(CounterCorrupt)
	}
	if p.dups[p.packets] || (p.spec.DupProb > 0 && dDraw < p.spec.DupProb) {
		d.Duplicate = true
		p.counters.Inc(CounterDuplicate)
	}
	if p.spec.ReorderProb > 0 && rDraw < p.spec.ReorderProb {
		d.Delay = p.spec.ReorderDelay
		p.counters.Inc(CounterReorder)
	}
	return d
}

func (p *Plan) windowed(idx uint64) bool {
	for _, w := range p.spec.DropWindows {
		if w.contains(idx) {
			return true
		}
	}
	return false
}

func (p *Plan) flapped(elapsed time.Duration) bool {
	for _, f := range p.spec.Flaps {
		if f.contains(elapsed) {
			return true
		}
	}
	return false
}

// FlipBit returns a copy of pkt with the decision's corrupt bit flipped
// (raw entropy reduced modulo the packet's bit length). It returns pkt
// unchanged when the decision carries no corruption or the packet is empty.
func (d Decision) FlipBit(pkt []byte) []byte {
	if d.CorruptBit < 0 || len(pkt) == 0 {
		return pkt
	}
	cp := append([]byte(nil), pkt...)
	bit := d.CorruptBit % (len(cp) * 8)
	cp[bit/8] ^= 1 << (bit % 8)
	return cp
}
