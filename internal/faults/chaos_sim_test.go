package faults_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// chaosPath wires the minimal recovery topology with a fault plan on the
// WAN leg (the DTN→receiver direction only — NAKs travel back clean):
//
//	sensor ──100G/10µs── DTN1 ──100G/5ms (faulted)── receiver
type chaosPath struct {
	nw       *netsim.Network
	sender   *core.Sender
	dtn1     *core.BufferNode
	receiver *core.Receiver
	plan     *faults.Plan

	seen     map[uint64]int    // delivered sequenced messages, by seq
	contents map[uint64][]byte // first delivered payload bytes, by seq
	gaps     []uint64          // seqs reported permanently lost via OnGap
}

func newChaosPath(t *testing.T, simSeed int64, spec faults.Spec, rcfg core.ReceiverConfig) *chaosPath {
	t.Helper()
	p := &chaosPath{
		nw:       netsim.New(simSeed),
		plan:     faults.New(spec),
		seen:     make(map[uint64]int),
		contents: make(map[uint64][]byte),
	}
	sensorAddr := wire.AddrFrom(10, 0, 0, 1, 4000)
	dtn1Addr := wire.AddrFrom(10, 0, 1, 1, 7000)
	recvAddr := wire.AddrFrom(10, 0, 2, 1, 7000)

	rcfg.Counters = p.plan.Counters()
	rcfg.OnMessage = func(m core.Message) {
		if m.Seq != 0 {
			p.seen[m.Seq]++
			if prev, ok := p.contents[m.Seq]; ok {
				// A duplicate (reorder/retransmit overlap) must carry the
				// same bytes as the original — any divergence means a
				// buffer was corrupted in flight or in the stash.
				if string(prev) != string(m.Payload) {
					t.Errorf("seq %d delivered twice with different bytes", m.Seq)
				}
			} else {
				p.contents[m.Seq] = append([]byte(nil), m.Payload...)
			}
		}
	}
	rcfg.OnGap = func(_ wire.ExperimentID, seq uint64) { p.gaps = append(p.gaps, seq) }
	p.receiver = core.NewReceiver(p.nw, "recv", recvAddr, rcfg)

	p.dtn1 = core.NewBufferNode(p.nw, "dtn1", dtn1Addr, core.BufferConfig{
		UpgradeFrom: core.ModeBare.ConfigID,
		Upgrade:     core.ModeWAN,
		Forward:     recvAddr,
		ForwardPort: 1,
		MaxAge:      time.Second,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	p.sender = core.NewSender(p.nw, "sensor", sensorAddr, core.SenderConfig{
		Experiment: 42,
		Dst:        dtn1Addr,
		Mode:       core.ModeBare,
	})

	p.nw.Connect(p.sender.Node(), p.dtn1.Node(),
		netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond})
	p.nw.ConnectAsym(p.dtn1.Node(), p.receiver.Node(),
		netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 5 * time.Millisecond, Fault: faults.SimFault(p.plan)},
		netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 5 * time.Millisecond})
	return p
}

func (p *chaosPath) stream(count uint64, seed int64) {
	p.sender.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000, Interval: 50 * time.Microsecond, Count: count, Seed: seed,
	}))
	p.nw.Loop().Run()
}

// recoveryConfig tunes NAKs so that a 10 ms buffer RTT is covered and the
// backoff cap is exercised.
func recoveryConfig() core.ReceiverConfig {
	return core.ReceiverConfig{
		NAKDelay:    200 * time.Microsecond,
		NAKRetry:    15 * time.Millisecond, // > 10 ms buffer RTT
		NAKRetryMax: 60 * time.Millisecond,
		MaxNAKs:     10,
	}
}

// TestSimChaosRelayRestartUnderBurstLoss is the acceptance scenario on the
// simulated substrate: 10% Gilbert burst loss on the WAN leg, a buffer-node
// crash/restart between two phases, and still 100% distinct-message
// delivery — phase-1 losses recover before the crash empties the buffer,
// phase-2 losses recover from the warm post-restart buffer.
func TestSimChaosRelayRestartUnderBurstLoss(t *testing.T) {
	p := newChaosPath(t, 1,
		faults.Spec{Seed: 11, BurstLoss: 0.10, MeanBurstLen: 3},
		recoveryConfig())

	p.stream(200, 5) // phase 1 drains fully: Loop.Run returns at quiescence
	if len(p.seen) != 200 {
		t.Fatalf("phase 1 delivered %d/200 distinct", len(p.seen))
	}
	if p.receiver.Stats.Lost != 0 {
		t.Fatalf("phase 1 permanent losses: %+v", p.receiver.Stats)
	}

	p.dtn1.Crash()
	if !p.dtn1.IsDown() || p.dtn1.BufferedBytes() != 0 {
		t.Fatalf("crash did not cold the buffer: down=%v bytes=%d",
			p.dtn1.IsDown(), p.dtn1.BufferedBytes())
	}
	p.dtn1.Restart()

	p.stream(200, 6) // phase 2 under the same ongoing fault plan
	if len(p.seen) != 400 {
		t.Fatalf("delivered %d/400 distinct after restart", len(p.seen))
	}
	for seq, n := range p.seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
	st := p.receiver.Stats
	if st.Lost != 0 || len(p.gaps) != 0 {
		t.Fatalf("permanent losses despite warm buffer: %+v gaps=%v", st, p.gaps)
	}
	if st.Recovered == 0 {
		t.Fatalf("no recoveries under 10%% loss: %+v", st)
	}
	if p.dtn1.Stats.Crashes != 1 {
		t.Fatalf("crashes %d", p.dtn1.Stats.Crashes)
	}
	c := p.plan.Counters()
	if c.Get(faults.CounterDropBurst) == 0 {
		t.Fatalf("no burst drops recorded: %s", c)
	}
	if c.Get(telemetry.CounterRecovered) != st.Recovered {
		t.Fatalf("counter %d != stats %d", c.Get(telemetry.CounterRecovered), st.Recovered)
	}
}

// TestSimChaosByteIdentityThroughPooledPath is the pool-aliasing guard on
// the simulated substrate: under the same seeds as the restart scenario —
// burst loss forcing NAK recovery, plus a crash that releases every stash
// buffer back to the pool so phase 2 runs entirely on recycled memory —
// every delivered payload must be byte-for-byte identical to what the
// instrument emitted. The generic source is deterministic (fixed seeded
// payload, per-record header), so the expectation is regenerated from an
// identically configured source rather than recorded.
func TestSimChaosByteIdentityThroughPooledPath(t *testing.T) {
	p := newChaosPath(t, 1,
		faults.Spec{Seed: 11, BurstLoss: 0.10, MeanBurstLen: 3},
		recoveryConfig())
	p.stream(200, 5)
	p.dtn1.Crash()
	p.dtn1.Restart()
	p.stream(200, 6)

	if len(p.seen) != 400 {
		t.Fatalf("delivered %d/400 distinct", len(p.seen))
	}
	if p.receiver.Stats.Recovered == 0 {
		t.Fatalf("no recoveries — the stash path was never exercised: %+v", p.receiver.Stats)
	}
	// The sensor→DTN leg is clean and FIFO, so the DTN's sequencer numbers
	// records in emission order: record i of a phase carries seq base+i+1.
	expectPhase := func(count uint64, seed int64, base uint64) {
		src := daq.NewGeneric(daq.GenericConfig{
			MessageSize: 1000, Interval: 50 * time.Microsecond, Count: count, Seed: seed,
		})
		for i := uint64(0); ; i++ {
			rec, ok := src.Next()
			if !ok {
				break
			}
			seq := base + i + 1
			got, delivered := p.contents[seq]
			if !delivered {
				t.Fatalf("seq %d never delivered", seq)
			}
			if !bytes.Equal(got, rec.Data) {
				t.Fatalf("seq %d bytes diverge from source record %d (len %d vs %d)",
					seq, i, len(got), len(rec.Data))
			}
		}
	}
	expectPhase(200, 5, 0)
	expectPhase(200, 6, 200)
}

// TestSimChaosSameSeedReproducesRun asserts the acceptance clause "same
// seed → same fault schedule → reproducible failure": two fresh builds of
// the whole scenario produce byte-identical stats and fault counters.
func TestSimChaosSameSeedReproducesRun(t *testing.T) {
	run := func() (core.ReceiverStats, map[string]uint64, int) {
		p := newChaosPath(t, 1,
			faults.Spec{Seed: 11, BurstLoss: 0.10, MeanBurstLen: 3},
			recoveryConfig())
		p.stream(200, 5)
		p.dtn1.Crash()
		p.dtn1.Restart()
		p.stream(200, 6)
		return p.receiver.Stats, p.plan.Counters().Snapshot(), len(p.seen)
	}
	st1, c1, n1 := run()
	st2, c2, n2 := run()
	if st1 != st2 {
		t.Fatalf("receiver stats diverged:\n%+v\n%+v", st1, st2)
	}
	if n1 != n2 {
		t.Fatalf("distinct deliveries diverged: %d vs %d", n1, n2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("counters diverged: %v vs %v", c1, c2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("counter %s diverged: %d vs %d", k, v, c2[k])
		}
	}
}

// TestSimChaosMidFlowCrashDegradesGracefully crashes the buffer node while
// losses are still unrecovered: the retransmission state is gone, so the
// receiver must write those gaps off (bounded NAKs), advance its floor, keep
// delivering around the holes, and report every hole via OnGap.
func TestSimChaosMidFlowCrashDegradesGracefully(t *testing.T) {
	rcfg := core.ReceiverConfig{
		NAKDelay:    200 * time.Microsecond,
		NAKRetry:    15 * time.Millisecond,
		NAKRetryMax: 30 * time.Millisecond,
		MaxNAKs:     3,
	}
	p := newChaosPath(t, 2, faults.Spec{Seed: 21, BurstLoss: 0.10, MeanBurstLen: 3}, rcfg)

	// Crash 5 ms in — early gaps are detected (one-way 5 ms) but no
	// recovery completes (buffer RTT 10 ms + 15 ms retry) — and restart
	// 3 ms later, mid-stream.
	p.nw.Loop().At(sim.Time(5*time.Millisecond), p.dtn1.Crash)
	p.nw.Loop().At(sim.Time(8*time.Millisecond), p.dtn1.Restart)
	p.stream(400, 5)

	st := p.receiver.Stats
	if st.Lost == 0 {
		t.Fatalf("expected permanent losses from the cold buffer: %+v", st)
	}
	if p.receiver.OutstandingGaps() != 0 {
		t.Fatalf("%d gaps still pending at quiescence", p.receiver.OutstandingGaps())
	}
	if uint64(len(p.gaps)) != st.Lost {
		t.Fatalf("OnGap reported %d holes, stats say %d", len(p.gaps), st.Lost)
	}
	if p.dtn1.Stats.DroppedDown == 0 {
		t.Fatalf("no frames hit the crashed node: %+v", p.dtn1.Stats)
	}
	// Every sequenced packet is accounted for: delivered or written off.
	var maxSeq uint64
	for seq := range p.seen {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	if uint64(len(p.seen))+st.Lost != maxSeq {
		t.Fatalf("delivered %d + lost %d != maxSeq %d", len(p.seen), st.Lost, maxSeq)
	}
	if got := p.plan.Counters().Get(telemetry.CounterPermanentLoss); got != st.Lost {
		t.Fatalf("permanent-loss counter %d != stats %d", got, st.Lost)
	}
}

// TestSimChaosReorderWindow injects 3-packet-scale reordering (2 ms extra
// delay ≈ 40 packets at the 50 µs emission interval is too coarse; the
// assertion is on behaviour, not magnitude): a NAK delay above the reorder
// delay absorbs every reordering without spurious recovery traffic.
func TestSimChaosReorderWindow(t *testing.T) {
	p := newChaosPath(t, 3,
		faults.Spec{Seed: 31, ReorderProb: 0.10, ReorderDelay: 2 * time.Millisecond},
		core.ReceiverConfig{
			NAKDelay: 4 * time.Millisecond, // > reorder delay: tolerate, don't NAK
			NAKRetry: 15 * time.Millisecond,
			MaxNAKs:  10,
		})
	p.stream(300, 5)

	if len(p.seen) != 300 {
		t.Fatalf("delivered %d/300 distinct", len(p.seen))
	}
	st := p.receiver.Stats
	if st.NAKsSent != 0 || st.Recovered != 0 {
		t.Fatalf("reordering triggered recovery traffic: %+v", st)
	}
	if st.Lost != 0 || st.Duplicates != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := p.plan.Counters().Get(faults.CounterReorder); got == 0 {
		t.Fatal("no reorders injected")
	}
	if p.dtn1.Node().Ports[1].Stats.FaultDelayed == 0 {
		t.Fatal("link recorded no fault delays")
	}
}

// TestSimChaosDuplicationIsAbsorbed injects duplicates; the receiver's
// seq-tracking must count and discard them without double delivery.
func TestSimChaosDuplicationIsAbsorbed(t *testing.T) {
	p := newChaosPath(t, 4, faults.Spec{Seed: 41, DupProb: 0.15}, recoveryConfig())
	p.stream(300, 5)

	if len(p.seen) != 300 {
		t.Fatalf("delivered %d/300 distinct", len(p.seen))
	}
	for seq, n := range p.seen {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
	st := p.receiver.Stats
	if st.Duplicates == 0 {
		t.Fatalf("no duplicates observed: %+v", st)
	}
	if got := p.plan.Counters().Get(faults.CounterDuplicate); got != st.Duplicates {
		t.Fatalf("injected %d dups, receiver saw %d", got, st.Duplicates)
	}
}

// TestSimChaosCorruptionRecovered flips bits in flight. Corrupted frames
// that fail the header check vanish silently — exactly like loss — and NAK
// recovery restores them from the buffer's clean copy; flips that land in
// the payload are delivered (DMTP has no payload checksum; integrity is the
// application's concern, per the paper's separation of mechanism).
func TestSimChaosCorruptionRecovered(t *testing.T) {
	p := newChaosPath(t, 5, faults.Spec{Seed: 51, CorruptProb: 0.05}, recoveryConfig())
	p.stream(300, 5)

	if len(p.seen) != 300 {
		t.Fatalf("delivered %d/300 distinct", len(p.seen))
	}
	if p.receiver.Stats.Lost != 0 {
		t.Fatalf("permanent losses: %+v", p.receiver.Stats)
	}
	if got := p.plan.Counters().Get(faults.CounterCorrupt); got == 0 {
		t.Fatal("no corruption injected")
	}
	if p.dtn1.Node().Ports[1].Stats.FaultCorrupted == 0 {
		t.Fatal("link recorded no fault corruptions")
	}
}

// TestSimChaosScriptedFlap drops everything inside a scripted link-down
// window at exact virtual times; recovery refills the hole afterwards.
func TestSimChaosScriptedFlap(t *testing.T) {
	p := newChaosPath(t, 6, faults.Spec{
		Seed:  61,
		Flaps: []faults.Flap{{Start: 3 * time.Millisecond, Len: 2 * time.Millisecond}},
	}, recoveryConfig())
	p.stream(300, 5)

	if len(p.seen) != 300 {
		t.Fatalf("delivered %d/300 distinct", len(p.seen))
	}
	st := p.receiver.Stats
	if st.Lost != 0 {
		t.Fatalf("permanent losses: %+v", st)
	}
	if st.Recovered == 0 {
		t.Fatalf("flap caused no recoveries: %+v", st)
	}
	flapDrops := p.plan.Counters().Get(faults.CounterDropFlap)
	if flapDrops == 0 {
		t.Fatal("no flap drops recorded")
	}
	// ~2 ms of a 50 µs-interval stream ≈ 40 packets in the window.
	if flapDrops < 20 || flapDrops > 60 {
		t.Fatalf("flap drops %d, want ≈40", flapDrops)
	}
	if p.dtn1.Node().Ports[1].Stats.DropsFault != flapDrops {
		t.Fatalf("port fault drops %d != plan %d", p.dtn1.Node().Ports[1].Stats.DropsFault, flapDrops)
	}
}
