// Package p4sim emulates the programmable network hardware of the paper's
// pilot study — the Tofino2 switch and Alveo FPGA NICs — as a match-action
// pipeline with P4-like discipline:
//
//   - header-only processing: stages see the DMTP header (a wire.View) and
//     per-packet metadata, never the payload (paper §1: "the use of
//     programmability is limited to header processing, making it suitable
//     for P4-programmable hardware");
//   - no floating point (Tofino has none — see the Fingerhut reference
//     [25] in the paper); all stage arithmetic is integer;
//   - bounded per-packet work: every packet traverses the fixed stage list
//     exactly once, and each stage performs one read-modify-write per
//     register array it touches;
//   - stateful objects are match-action tables, register arrays, and
//     counters, as on Tofino.
//
// The pipeline is attached to the simulated network by Switch
// (a netsim.Handler), which parses frames, runs the pipeline after a fixed
// pipeline latency, and emits the resulting unicast/multicast copies and
// any control packets the stages mint.
package p4sim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Meta is the per-packet metadata bus: what a P4 program would keep in
// standard/bridged metadata. Stages read and amend it; the switch acts on
// the final values.
type Meta struct {
	// Now is the packet's processing time at this element.
	Now sim.Time
	// IngressPort is the port the frame arrived on.
	IngressPort int
	// Src and Dst are the frame's addresses (carrier addressing).
	Src, Dst wire.Addr
	// Drop, when set, discards the packet at the end of the pipeline.
	Drop bool
	// DropReason names the stage decision for diagnostics.
	DropReason string
	// EgressPort is the chosen output; -1 means "not yet routed".
	EgressPort int
	// NewDst, if non-zero, rewrites the frame's destination.
	NewDst wire.Addr
	// Copies are additional (multicast) emissions of the packet.
	Copies []Copy
	// Mints are control packets fabricated by stages (deadline-exceeded
	// notifications, back-pressure signals), routed by destination.
	Mints []Mint
}

// Copy is a duplicated emission of the processed packet.
type Copy struct {
	Port int
	Dst  wire.Addr
	// Pkt, if non-nil, replaces the packet bytes for this copy (used when
	// a copy must carry a different mode than the primary).
	Pkt wire.View
}

// Mint is a control packet fabricated in the pipeline.
type Mint struct {
	Dst  wire.Addr
	Data []byte
}

// Reset reinitialises m for a new packet, truncating (but keeping the
// backing arrays of) Copies and Mints. A per-element scratch Meta reset
// before each packet makes the steady-state pipeline invocation
// allocation-free; the entries themselves are copied out by value before
// the next Reset, so reuse is safe.
func (m *Meta) Reset(now sim.Time, ingressPort int, src, dst wire.Addr) {
	m.Now = now
	m.IngressPort = ingressPort
	m.Src, m.Dst = src, dst
	m.Drop = false
	m.DropReason = ""
	m.EgressPort = -1
	m.NewDst = wire.Addr{}
	m.Copies = m.Copies[:0]
	m.Mints = m.Mints[:0]
}

// Context gives stages access to element state: the clock, register
// arrays, counters, and egress queue depths (Tofino exposes queue depth to
// the egress pipeline; the back-pressure program uses it).
type Context struct {
	now        sim.Time
	registers  map[string]*RegisterArray
	counters   map[string]*Counter
	queueDepth func(port int) int
	// expCounters memoizes the per-experiment counter pair so the
	// per-packet ExperimentCounter stage resolves counters by integer key
	// instead of formatting names (the names are built once per
	// experiment, on first sight).
	expCounters map[wire.ExperimentID]expCounterEntry
}

type expCounterEntry struct{ total, slice *Counter }

// NewContext creates a context; queueDepth may be nil (depths read as 0).
func NewContext(queueDepth func(port int) int) *Context {
	return &Context{
		registers:   make(map[string]*RegisterArray),
		counters:    make(map[string]*Counter),
		queueDepth:  queueDepth,
		expCounters: make(map[wire.ExperimentID]expCounterEntry),
	}
}

// Now returns the packet-processing timestamp.
func (c *Context) Now() sim.Time { return c.now }

// QueueDepth returns the frame count queued on an egress port.
func (c *Context) QueueDepth(port int) int {
	if c.queueDepth == nil {
		return 0
	}
	return c.queueDepth(port)
}

// Register returns (creating on first use) a named register array of the
// given size. Sizes must agree across uses.
func (c *Context) Register(name string, size int) *RegisterArray {
	if r, ok := c.registers[name]; ok {
		if r.size != size {
			panic(fmt.Sprintf("p4sim: register %q sized %d, requested %d", name, r.size, size))
		}
		return r
	}
	r := &RegisterArray{name: name, size: size, vals: make(map[int]uint64)}
	c.registers[name] = r
	return r
}

// Counter returns (creating on first use) a named counter.
func (c *Context) Counter(name string) *Counter {
	if ctr, ok := c.counters[name]; ok {
		return ctr
	}
	ctr := &Counter{}
	c.counters[name] = ctr
	return ctr
}

// RegisterArray is a fixed-size array of 64-bit registers, the stateful
// primitive of P4 hardware. Indexing is modulo the array size, as hash
// indexing on hardware would be.
type RegisterArray struct {
	name string
	size int
	vals map[int]uint64
}

func (r *RegisterArray) idx(i uint64) int { return int(i % uint64(r.size)) }

// Read returns the register at index i.
func (r *RegisterArray) Read(i uint64) uint64 { return r.vals[r.idx(i)] }

// Write stores v at index i.
func (r *RegisterArray) Write(i uint64, v uint64) { r.vals[r.idx(i)] = v }

// FetchAdd adds delta to the register at index i and returns the value
// before the addition (a single atomic RMW, as P4 externs provide).
func (r *RegisterArray) FetchAdd(i uint64, delta uint64) uint64 {
	k := r.idx(i)
	old := r.vals[k]
	r.vals[k] = old + delta
	return old
}

// Counter counts packets and bytes.
type Counter struct {
	Packets uint64
	Bytes   uint64
}

// Add records one packet of n bytes.
func (c *Counter) Add(n int) {
	c.Packets++
	c.Bytes += uint64(n)
}

// Stage is one match-action unit in the pipeline.
type Stage interface {
	// Name identifies the stage in diagnostics.
	Name() string
	// Process inspects and optionally rewrites the packet header. It may
	// return a reshaped packet (mode changes alter header length); if the
	// returned view is nil the input packet continues unchanged.
	Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error)
}

// Pipeline is an ordered stage list plus the element's state.
type Pipeline struct {
	Stages []Stage
	Ctx    *Context
	// Processed counts packets run through the pipeline.
	Processed uint64
	// Errors counts packets dropped due to stage errors (malformed
	// headers and the like).
	Errors uint64
}

// NewPipeline builds a pipeline over the given stages.
func NewPipeline(ctx *Context, stages ...Stage) *Pipeline {
	return &Pipeline{Stages: stages, Ctx: ctx}
}

// Run processes one packet, returning the (possibly reshaped) packet.
// On error the packet is marked dropped and the error returned for logs.
func (p *Pipeline) Run(pkt wire.View, meta *Meta) (wire.View, error) {
	p.Processed++
	p.Ctx.now = meta.Now
	for _, st := range p.Stages {
		out, err := st.Process(p.Ctx, pkt, meta)
		if err != nil {
			p.Errors++
			meta.Drop = true
			meta.DropReason = st.Name() + ": " + err.Error()
			return pkt, fmt.Errorf("p4sim: stage %s: %w", st.Name(), err)
		}
		if out != nil {
			pkt = out
		}
		if meta.Drop {
			return pkt, nil
		}
	}
	return pkt, nil
}
