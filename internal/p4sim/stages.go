package p4sim

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// WildcardPort matches any ingress port in ModeChanger rules.
const WildcardPort = -1

// ModeAction describes how a packet's mode is rewritten when a rule hits:
// which features to activate or deactivate, and the configuration values to
// install into newly added extension fields (paper §5.2: "Activating a mode
// involves updating the core header and adding mode-specific extension
// headers").
type ModeAction struct {
	NewConfigID uint8
	Set, Clear  wire.Features

	// RetransmitBuffer is installed when FeatReliable is newly set, and
	// also overwrites the existing buffer when RepointBuffer is true —
	// the "more recent retransmission buffer" rewrite of §5.1.
	RetransmitBuffer wire.Addr
	RepointBuffer    bool

	// MaxAgeMicros is installed when FeatAgeTracked is newly set.
	MaxAgeMicros uint32

	// DeadlineBudget and DeadlineNotify configure FeatTimely: the
	// deadline is set to now + budget when the feature is newly set.
	DeadlineBudget time.Duration
	DeadlineNotify wire.Addr

	// PaceRateMbps/PaceBurstKB configure FeatPaced when newly set.
	PaceRateMbps uint32
	PaceBurstKB  uint32

	// BackPressureSink configures FeatBackPressure when newly set.
	BackPressureSink wire.Addr

	// DupGroup/DupScope configure FeatDuplicate when newly set.
	DupGroup uint32
	DupScope uint8

	// TraceEvery, when positive, originates a sampled in-band trace on
	// every TraceEvery'th transition whose packet does not already carry
	// one — adding FeatTraced is just another config rewrite at the mode
	// boundary. Packets arriving with a sampled trace keep it regardless
	// (unless Clear strips FeatTraced) and get a reshape hop stamp.
	TraceEvery int
}

type modeKey struct {
	port     int
	configID uint8
}

// ModeChanger is the mode-transition table: it matches (ingress port,
// config ID) and rewrites the packet's mode. It is the central mechanism of
// the paper — "the transport's mode is changed by on-path network
// elements" (§5.3).
type ModeChanger struct {
	rules map[modeKey]ModeAction
	// Transitions counts applied mode changes.
	Transitions uint64
}

// NewModeChanger returns an empty mode table.
func NewModeChanger() *ModeChanger {
	return &ModeChanger{rules: make(map[modeKey]ModeAction)}
}

// Rule installs a mode transition for packets arriving on port (or
// WildcardPort) in mode fromConfigID.
func (m *ModeChanger) Rule(port int, fromConfigID uint8, act ModeAction) *ModeChanger {
	m.rules[modeKey{port, fromConfigID}] = act
	return m
}

// Name implements Stage.
func (m *ModeChanger) Name() string { return "mode-changer" }

// Process implements Stage.
func (m *ModeChanger) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() {
		return nil, nil
	}
	act, ok := m.rules[modeKey{meta.IngressPort, pkt.ConfigID()}]
	if !ok {
		act, ok = m.rules[modeKey{WildcardPort, pkt.ConfigID()}]
		if !ok {
			return nil, nil
		}
	}
	before := pkt.Features()
	want := before&^act.Clear | act.Set
	originate := act.TraceEvery > 0 && !want.Has(wire.FeatTraced) &&
		(m.Transitions+1)%uint64(act.TraceEvery) == 0
	if originate {
		want |= wire.FeatTraced
	}
	out, err := pkt.Reshape(act.NewConfigID, want)
	if err != nil {
		return nil, err
	}
	added := want &^ before
	if added.Has(wire.FeatReliable) || (act.RepointBuffer && want.Has(wire.FeatReliable)) {
		if err := out.SetRetransmitBuffer(act.RetransmitBuffer); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatAgeTracked) {
		if err := out.SetMaxAge(act.MaxAgeMicros); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatTimely) {
		deadline := ctx.Now().Add(act.DeadlineBudget).Nanos()
		if err := out.SetDeadline(deadline, act.DeadlineNotify); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatPaced) {
		if err := out.SetPace(wire.PaceExt{RateMbps: act.PaceRateMbps, BurstKB: act.PaceBurstKB}); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatBackPressure) {
		if err := setBackPressureSink(out, act.BackPressureSink, 0); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatDuplicate) {
		if err := setDup(out, act.DupGroup, act.DupScope); err != nil {
			return nil, err
		}
	}
	if added.Has(wire.FeatTimestamped) {
		if err := out.SetOriginTimestamp(ctx.Now().Nanos()); err != nil {
			return nil, err
		}
	}
	if originate {
		if err := out.SetTrace(wire.TraceExt{
			TraceID:      uint32(m.Transitions + 1),
			Flags:        wire.TraceSampledFlag,
			OriginConfig: pkt.ConfigID(),
		}); err != nil {
			return nil, err
		}
	}
	if out.TraceSampled() {
		// The reshape itself is a hop: the stamp's config annotation records
		// the mode the packet was rewritten into.
		if err := out.AppendHopStamp(wire.TraceReshapeHop(act.NewConfigID), int64(ctx.Now().Nanos())); err != nil {
			return nil, err
		}
	}
	m.Transitions++
	return out, nil
}

// setBackPressureSink writes the full back-pressure extension. wire.View
// only exposes a level setter (the common in-flight mutation), so the mode
// changer reaches the field through the offset API.
func setBackPressureSink(v wire.View, sink wire.Addr, level uint8) error {
	off, err := v.Features().ExtOffset(wire.FeatBackPressure)
	if err != nil {
		return err
	}
	b := v[wire.CoreHeaderLen+off:]
	copy(b[:4], sink.IP[:])
	b[4] = byte(sink.Port >> 8)
	b[5] = byte(sink.Port)
	b[6] = level
	return nil
}

func setDup(v wire.View, group uint32, scope uint8) error {
	off, err := v.Features().ExtOffset(wire.FeatDuplicate)
	if err != nil {
		return err
	}
	b := v[wire.CoreHeaderLen+off:]
	b[0], b[1], b[2], b[3] = byte(group>>24), byte(group>>16), byte(group>>8), byte(group)
	b[4] = scope
	return nil
}

// TraceStamper records this element's transit in sampled in-band traces:
// one hop stamp per traced packet, written in place into the FeatTraced
// ring (paper-style INT, but bounded to the extension's fixed slots).
// Untraced and sampled-out packets pass through untouched at the cost of
// one feature-bit test.
type TraceStamper struct {
	// HopID identifies this element in hop stamps; zero means the generic
	// wire.TraceHopNet.
	HopID uint8
	// Stamped counts hop stamps written.
	Stamped uint64
}

// Name implements Stage.
func (t *TraceStamper) Name() string { return "trace-stamper" }

// Process implements Stage.
func (t *TraceStamper) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.TraceSampled() {
		return nil, nil
	}
	hop := t.HopID
	if hop == 0 {
		hop = wire.TraceHopNet
	}
	if err := pkt.AppendHopStamp(hop, int64(ctx.Now().Nanos())); err != nil {
		return nil, err
	}
	t.Stamped++
	return nil, nil
}

// Sequencer assigns per-flow sequence numbers to loss-recoverable streams
// (paper §5.4: "Network elements add a sequence number to loss-recoverable
// streams"). Sequence numbers start at 1; 0 means "unassigned", so
// retransmitted packets (which already carry their number) pass through
// untouched. Flows are indexed by experiment ID into a register array.
type Sequencer struct {
	// Slots sizes the flow register array.
	Slots int
	// Assigned counts sequence numbers handed out.
	Assigned uint64
}

// Name implements Stage.
func (s *Sequencer) Name() string { return "sequencer" }

// Process implements Stage.
func (s *Sequencer) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatSequenced) {
		return nil, nil
	}
	seq, err := pkt.Seq()
	if err != nil {
		return nil, err
	}
	if seq != 0 {
		return nil, nil // already assigned (e.g. a retransmission)
	}
	slots := s.Slots
	if slots == 0 {
		slots = 4096
	}
	reg := ctx.Register("seq", slots)
	next := reg.FetchAdd(uint64(pkt.Experiment()), 1) + 1
	if err := pkt.SetSeq(next); err != nil {
		return nil, err
	}
	s.Assigned++
	return nil, nil
}

// AgeTracker accumulates packet age and sets the aged flag (paper §5.4:
// "An element updates an 'age' field, and it additionally updates an 'aged'
// flag if a maximum age threshold was exceeded by the time the packet
// reached that network element").
//
// If the packet carries an origin timestamp (FeatTimestamped) the age is
// set exactly to now−origin — scientific facilities run synchronised clocks
// (PTP/White Rabbit), which the paper's deployment presumes. Otherwise the
// per-ingress-port static delta (an operator-configured estimate of the
// upstream segment latency) is added.
type AgeTracker struct {
	// PortDeltaMicros maps ingress port → age increment; WildcardPort
	// supplies the default.
	PortDeltaMicros map[int]uint32
	// AgedSeen counts packets observed with (or given) the aged flag.
	AgedSeen uint64
}

// Name implements Stage.
func (a *AgeTracker) Name() string { return "age-tracker" }

// Process implements Stage.
func (a *AgeTracker) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatAgeTracked) {
		return nil, nil
	}
	var aged bool
	if origin, err := pkt.OriginTimestamp(); err == nil && origin > 0 {
		now := ctx.Now().Nanos()
		var ageMicros uint64
		if now > origin {
			ageMicros = (now - origin) / 1000
		}
		cur, err := pkt.Age()
		if err != nil {
			return nil, err
		}
		delta := uint32(0)
		if ageMicros > uint64(cur.AgeMicros) {
			d := ageMicros - uint64(cur.AgeMicros)
			if d > uint64(^uint32(0)) {
				d = uint64(^uint32(0))
			}
			delta = uint32(d)
		}
		aged, err = pkt.AddAge(delta)
		if err != nil {
			return nil, err
		}
	} else {
		delta, ok := a.PortDeltaMicros[meta.IngressPort]
		if !ok {
			delta = a.PortDeltaMicros[WildcardPort]
		}
		var err error
		aged, err = pkt.AddAge(delta)
		if err != nil {
			return nil, err
		}
	}
	if aged {
		a.AgedSeen++
	}
	return nil, nil
}

// DeadlineMarker checks FeatTimely deadlines and mints a DeadlineExceeded
// notification toward the configured sink when a packet is late. A register
// array suppresses notification floods: per experiment, at most one
// notification per SuppressWindow.
type DeadlineMarker struct {
	// Reporter identifies this element in notifications.
	Reporter wire.Addr
	// SuppressWindow rate-limits notifications per experiment; zero means
	// notify on every late packet.
	SuppressWindow time.Duration
	// DropExpired also drops late packets (an ablation knob; the default
	// pilot behaviour is mark-and-forward).
	DropExpired bool
	// Exceeded counts late packets observed.
	Exceeded uint64
	// Notified counts minted notifications.
	Notified uint64
}

// Name implements Stage.
func (d *DeadlineMarker) Name() string { return "deadline-marker" }

// Process implements Stage.
func (d *DeadlineMarker) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatTimely) {
		return nil, nil
	}
	deadline, notify, err := pkt.Deadline()
	if err != nil {
		return nil, err
	}
	now := ctx.Now().Nanos()
	if deadline == 0 || now <= deadline {
		return nil, nil
	}
	d.Exceeded++
	suppress := false
	if d.SuppressWindow > 0 {
		reg := ctx.Register("deadline-suppress", 1024)
		last := reg.Read(uint64(pkt.Experiment()))
		if last != 0 && now-last < uint64(d.SuppressWindow) {
			suppress = true
		} else {
			reg.Write(uint64(pkt.Experiment()), now)
		}
	}
	if !suppress && !notify.IsZero() {
		seq, _ := pkt.Seq() // zero when unsequenced; still useful
		note := wire.DeadlineExceeded{
			Experiment:    pkt.Experiment(),
			Seq:           seq,
			DeadlineNanos: deadline,
			ObservedNanos: now,
			Reporter:      d.Reporter,
		}
		data, err := note.AppendTo(nil)
		if err != nil {
			return nil, err
		}
		meta.Mints = append(meta.Mints, Mint{Dst: notify, Data: data})
		d.Notified++
	}
	if d.DropExpired {
		meta.Drop = true
		meta.DropReason = "deadline expired"
	}
	return nil, nil
}

// Duplicator clones packets of duplication groups toward additional
// consumers (paper §5.1: "Streams can be duplicated in the network to reach
// several downstream researchers directly"). The group table maps a
// duplication group to egress targets; the remaining scope is decremented
// on copies so chains of duplicators terminate.
type Duplicator struct {
	groups map[uint32][]Copy
	// Duplicated counts minted copies.
	Duplicated uint64
}

// NewDuplicator returns an empty duplication table.
func NewDuplicator() *Duplicator {
	return &Duplicator{groups: make(map[uint32][]Copy)}
}

// Group installs duplication targets for a group ID.
func (d *Duplicator) Group(id uint32, targets ...Copy) *Duplicator {
	d.groups[id] = append(d.groups[id], targets...)
	return d
}

// Name implements Stage.
func (d *Duplicator) Name() string { return "duplicator" }

// Process implements Stage.
func (d *Duplicator) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatDuplicate) {
		return nil, nil
	}
	dup, err := pkt.Dup()
	if err != nil {
		return nil, err
	}
	if dup.Scope == 0 {
		return nil, nil
	}
	targets := d.groups[dup.Group]
	for _, tgt := range targets {
		cp := pkt.Clone()
		if err := cp.SetDupScope(dup.Scope - 1); err != nil {
			return nil, err
		}
		meta.Copies = append(meta.Copies, Copy{Port: tgt.Port, Dst: tgt.Dst, Pkt: cp})
		d.Duplicated++
	}
	return nil, nil
}

// BackPressureMonitor inspects the chosen egress queue and relays a
// back-pressure signal toward the configured sink when occupancy crosses
// the threshold (paper §5.1: "if an element receives signals of downstream
// congestion or loss, it can relay a back-pressure signal to the sender").
// It must run after the Forwarder so the egress port is known.
type BackPressureMonitor struct {
	// HighWater is the queue depth (frames) above which pressure is
	// signalled; LowWater clears it.
	HighWater, LowWater int
	// RateHintMbps is suggested to the sender when signalling.
	RateHintMbps uint32
	// Reporter identifies this element.
	Reporter wire.Addr
	// SuppressWindow rate-limits signals per experiment.
	SuppressWindow time.Duration
	// Signalled counts minted signals.
	Signalled uint64
}

// Name implements Stage.
func (b *BackPressureMonitor) Name() string { return "backpressure" }

// Process implements Stage.
func (b *BackPressureMonitor) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatBackPressure) || meta.EgressPort < 0 {
		return nil, nil
	}
	depth := ctx.QueueDepth(meta.EgressPort)
	bp, err := pkt.BackPressure()
	if err != nil {
		return nil, err
	}
	var level uint8
	switch {
	case depth >= b.HighWater && b.HighWater > 0:
		// Scale level with overshoot, saturating at 255.
		over := depth - b.HighWater
		l := 128 + over
		if l > 255 {
			l = 255
		}
		level = uint8(l)
	case depth <= b.LowWater:
		level = 0
	default:
		return nil, nil // hysteresis band: leave header level as is
	}
	if err := pkt.SetBackPressureLevel(level); err != nil {
		return nil, err
	}
	if level == 0 || bp.Sink.IsZero() {
		return nil, nil
	}
	if b.SuppressWindow > 0 {
		reg := ctx.Register("bp-suppress", 1024)
		now := ctx.Now().Nanos()
		last := reg.Read(uint64(pkt.Experiment()))
		if last != 0 && now-last < uint64(b.SuppressWindow) {
			return nil, nil
		}
		reg.Write(uint64(pkt.Experiment()), now)
	}
	sig := wire.BackPressureSignal{
		Experiment:   pkt.Experiment(),
		Level:        level,
		RateHintMbps: b.RateHintMbps,
		Reporter:     b.Reporter,
	}
	data, err := sig.AppendTo(nil)
	if err != nil {
		return nil, err
	}
	meta.Mints = append(meta.Mints, Mint{Dst: bp.Sink, Data: data})
	b.Signalled++
	return nil, nil
}

// Forwarder routes by exact destination match with an optional default,
// setting the egress port in the metadata.
type Forwarder struct {
	routes      map[wire.Addr]int
	defaultPort int
	hasDefault  bool
	// NoRoute counts packets dropped for lack of a route.
	NoRoute uint64
}

// NewForwarder returns an empty forwarding table.
func NewForwarder() *Forwarder { return &Forwarder{routes: make(map[wire.Addr]int)} }

// Route installs dst → port.
func (f *Forwarder) Route(dst wire.Addr, port int) *Forwarder {
	f.routes[dst] = port
	return f
}

// SetDefault installs the default egress.
func (f *Forwarder) SetDefault(port int) *Forwarder {
	f.defaultPort, f.hasDefault = port, true
	return f
}

// Lookup resolves a destination to an egress port.
func (f *Forwarder) Lookup(dst wire.Addr) (int, bool) {
	if p, ok := f.routes[dst]; ok {
		return p, true
	}
	if f.hasDefault {
		return f.defaultPort, true
	}
	return 0, false
}

// Name implements Stage.
func (f *Forwarder) Name() string { return "forwarder" }

// Process implements Stage.
func (f *Forwarder) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	port, ok := f.Lookup(meta.Dst)
	if !ok {
		f.NoRoute++
		meta.Drop = true
		meta.DropReason = fmt.Sprintf("no route to %v", meta.Dst)
		return nil, nil
	}
	meta.EgressPort = port
	return nil, nil
}

// ExperimentCounter counts packets and bytes per experiment and slice,
// giving operators the per-partition visibility Req 8 asks the header to
// enable.
type ExperimentCounter struct{}

// Name implements Stage.
func (ExperimentCounter) Name() string { return "experiment-counter" }

// Process implements Stage.
func (ExperimentCounter) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	exp := pkt.Experiment()
	ent, ok := ctx.expCounters[exp]
	if !ok {
		// First packet of this (experiment, slice): build the names once
		// and memoize the counter pair; every later packet is a map hit.
		ent = expCounterEntry{
			total: ctx.Counter(fmt.Sprintf("exp/%d", exp.Experiment())),
			slice: ctx.Counter(fmt.Sprintf("exp/%d/slice/%d", exp.Experiment(), exp.Slice())),
		}
		ctx.expCounters[exp] = ent
	}
	ent.total.Add(len(pkt))
	ent.slice.Add(len(pkt))
	return nil, nil
}

// Policer enforces the pacing contract carried in FeatPaced headers with a
// per-experiment token-bucket meter, the P4 analogue of an RFC 2698-style
// meter extern: senders that exceed their assigned rate have the excess
// dropped at the edge. This is how a capacity-planned network protects
// itself from a misconfigured sender without running congestion control
// (paper §4.1(4): "resource reservation and capacity planning forestall
// the potential harm from misbehaving peers").
type Policer struct {
	// Slots sizes the meter register arrays (default 1024).
	Slots int
	// Conformed and Policed count packets passed and dropped.
	Conformed, Policed uint64
}

// Name implements Stage.
func (p *Policer) Name() string { return "policer" }

// Process implements Stage.
func (p *Policer) Process(ctx *Context, pkt wire.View, meta *Meta) (wire.View, error) {
	if pkt.IsControl() || !pkt.Features().Has(wire.FeatPaced) {
		return nil, nil
	}
	pace, err := pkt.Pace()
	if err != nil {
		return nil, err
	}
	if pace.RateMbps == 0 {
		return nil, nil // unmetered
	}
	slots := p.Slots
	if slots == 0 {
		slots = 1024
	}
	tokens := ctx.Register("meter-tokens", slots) // byte credit, fixed point
	lastNs := ctx.Register("meter-last", slots)
	idx := uint64(pkt.Experiment())
	now := ctx.Now().Nanos()

	burst := uint64(pace.BurstKB) * 1024
	if burst == 0 {
		burst = 64 << 10
	}
	t := tokens.Read(idx)
	last := lastNs.Read(idx)
	switch {
	case last == 0:
		t = burst // a flow's first packet sees a full bucket
	case now > last:
		// rate [Mbps] × Δt [ns] / 8000 = bytes accrued. Integer-only, as
		// P4 requires.
		t += uint64(pace.RateMbps) * (now - last) / 8000
	}
	if t > burst {
		t = burst
	}
	lastNs.Write(idx, now)
	need := uint64(len(pkt))
	if t < need {
		tokens.Write(idx, t)
		p.Policed++
		meta.Drop = true
		meta.DropReason = "pace exceeded"
		return nil, nil
	}
	tokens.Write(idx, t-need)
	p.Conformed++
	return nil, nil
}
