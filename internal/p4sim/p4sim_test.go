package p4sim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func dataPacket(t *testing.T, h wire.Header, payload string) wire.View {
	t.Helper()
	b, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire.View(append(b, payload...))
}

func runOne(t *testing.T, p *Pipeline, pkt wire.View, meta *Meta) wire.View {
	t.Helper()
	out, err := p.Run(pkt, meta)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return out
}

func TestRegisterArray(t *testing.T) {
	ctx := NewContext(nil)
	r := ctx.Register("r", 8)
	if r.Read(3) != 0 {
		t.Fatal("fresh register nonzero")
	}
	if old := r.FetchAdd(3, 5); old != 0 {
		t.Fatalf("fetchadd old %d", old)
	}
	if r.Read(3) != 5 {
		t.Fatalf("read %d", r.Read(3))
	}
	// Indexing wraps modulo size, like hash indexing on hardware.
	if r.Read(11) != 5 {
		t.Fatal("modulo indexing broken")
	}
	r.Write(0, 9)
	if r.Read(8) != 9 {
		t.Fatal("modulo write broken")
	}
	if ctx.Register("r", 8) != r {
		t.Fatal("register identity lost")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch accepted")
			}
		}()
		ctx.Register("r", 16)
	}()
}

func TestModeChangerActivatesAndConfigures(t *testing.T) {
	mc := NewModeChanger()
	buffer := wire.AddrFrom(10, 0, 0, 1, 7000)
	notify := wire.AddrFrom(10, 0, 0, 9, 7001)
	mc.Rule(WildcardPort, 0, ModeAction{
		NewConfigID:      2,
		Set:              wire.FeatSequenced | wire.FeatReliable | wire.FeatAgeTracked | wire.FeatTimely | wire.FeatTimestamped,
		RetransmitBuffer: buffer,
		MaxAgeMicros:     5000,
		DeadlineBudget:   20 * time.Millisecond,
		DeadlineNotify:   notify,
	})
	ctx := NewContext(nil)
	p := NewPipeline(ctx, mc)
	pkt := dataPacket(t, wire.Header{ConfigID: 0, Experiment: wire.NewExperimentID(7, 1)}, "data")
	meta := &Meta{Now: sim.Time(time.Second), EgressPort: -1}
	out := runOne(t, p, pkt, meta)

	if out.ConfigID() != 2 {
		t.Fatalf("config %d", out.ConfigID())
	}
	if buf, _ := out.RetransmitBuffer(); buf != buffer {
		t.Fatalf("buffer %v", buf)
	}
	age, err := out.Age()
	if err != nil || age.MaxAgeMicros != 5000 {
		t.Fatalf("age %+v %v", age, err)
	}
	deadline, n, err := out.Deadline()
	if err != nil || n != notify {
		t.Fatalf("deadline ext %v %v", n, err)
	}
	if deadline != uint64(time.Second+20*time.Millisecond) {
		t.Fatalf("deadline %d", deadline)
	}
	ts, err := out.OriginTimestamp()
	if err != nil || ts != uint64(time.Second) {
		t.Fatalf("origin %d %v", ts, err)
	}
	if string(out.Payload()) != "data" {
		t.Fatal("payload lost")
	}
	if mc.Transitions != 1 {
		t.Fatalf("transitions %d", mc.Transitions)
	}
}

func TestModeChangerPortSpecificBeatsWildcard(t *testing.T) {
	mc := NewModeChanger()
	mc.Rule(1, 0, ModeAction{NewConfigID: 5})
	mc.Rule(WildcardPort, 0, ModeAction{NewConfigID: 9})
	p := NewPipeline(NewContext(nil), mc)

	pkt := dataPacket(t, wire.Header{}, "")
	out := runOne(t, p, pkt, &Meta{IngressPort: 1, EgressPort: -1})
	if out.ConfigID() != 5 {
		t.Fatalf("port rule not preferred: %d", out.ConfigID())
	}
	pkt2 := dataPacket(t, wire.Header{}, "")
	out2 := runOne(t, p, pkt2, &Meta{IngressPort: 3, EgressPort: -1})
	if out2.ConfigID() != 9 {
		t.Fatalf("wildcard not applied: %d", out2.ConfigID())
	}
}

func TestModeChangerRepointsBuffer(t *testing.T) {
	mc := NewModeChanger()
	closer := wire.AddrFrom(10, 0, 0, 2, 7000)
	mc.Rule(WildcardPort, 2, ModeAction{
		NewConfigID:      3,
		RetransmitBuffer: closer,
		RepointBuffer:    true,
	})
	p := NewPipeline(NewContext(nil), mc)
	h := wire.Header{ConfigID: 2, Features: wire.FeatReliable}
	h.Retransmit.Buffer = wire.AddrFrom(10, 0, 0, 1, 7000)
	pkt := dataPacket(t, h, "")
	out := runOne(t, p, pkt, &Meta{EgressPort: -1})
	if buf, _ := out.RetransmitBuffer(); buf != closer {
		t.Fatalf("buffer not repointed: %v", buf)
	}
}

func TestModeChangerIgnoresControlAndUnmatched(t *testing.T) {
	mc := NewModeChanger()
	mc.Rule(WildcardPort, 0, ModeAction{NewConfigID: 1})
	p := NewPipeline(NewContext(nil), mc)
	ctrl := dataPacket(t, wire.Header{ConfigID: wire.ConfigNAK}, "")
	out := runOne(t, p, ctrl, &Meta{EgressPort: -1})
	if out.ConfigID() != wire.ConfigNAK {
		t.Fatal("control packet reshaped")
	}
	other := dataPacket(t, wire.Header{ConfigID: 7}, "")
	out2 := runOne(t, p, other, &Meta{EgressPort: -1})
	if out2.ConfigID() != 7 {
		t.Fatal("unmatched packet reshaped")
	}
}

func TestSequencerAssignsPerExperiment(t *testing.T) {
	seqr := &Sequencer{}
	p := NewPipeline(NewContext(nil), seqr)
	expA, expB := wire.NewExperimentID(1, 0), wire.NewExperimentID(2, 0)
	var gotA []uint64
	for i := 0; i < 3; i++ {
		pkt := dataPacket(t, wire.Header{ConfigID: 1, Features: wire.FeatSequenced, Experiment: expA}, "")
		out := runOne(t, p, pkt, &Meta{EgressPort: -1})
		s, _ := out.Seq()
		gotA = append(gotA, s)
	}
	for i, want := range []uint64{1, 2, 3} {
		if gotA[i] != want {
			t.Fatalf("expA seqs %v", gotA)
		}
	}
	pkt := dataPacket(t, wire.Header{ConfigID: 1, Features: wire.FeatSequenced, Experiment: expB}, "")
	out := runOne(t, p, pkt, &Meta{EgressPort: -1})
	if s, _ := out.Seq(); s != 1 {
		t.Fatalf("expB seq %d", s)
	}
	if seqr.Assigned != 4 {
		t.Fatalf("assigned %d", seqr.Assigned)
	}
}

func TestSequencerSkipsAssignedAndUnsequenced(t *testing.T) {
	seqr := &Sequencer{}
	p := NewPipeline(NewContext(nil), seqr)
	h := wire.Header{ConfigID: 1, Features: wire.FeatSequenced}
	h.Seq.Seq = 42 // a retransmission carries its number
	pkt := dataPacket(t, h, "")
	out := runOne(t, p, pkt, &Meta{EgressPort: -1})
	if s, _ := out.Seq(); s != 42 {
		t.Fatalf("retransmission renumbered: %d", s)
	}
	plain := dataPacket(t, wire.Header{ConfigID: 0}, "")
	runOne(t, p, plain, &Meta{EgressPort: -1})
	if seqr.Assigned != 0 {
		t.Fatalf("assigned %d", seqr.Assigned)
	}
}

func TestAgeTrackerStaticDelta(t *testing.T) {
	at := &AgeTracker{PortDeltaMicros: map[int]uint32{WildcardPort: 100, 2: 700}}
	p := NewPipeline(NewContext(nil), at)
	h := wire.Header{ConfigID: 1, Features: wire.FeatAgeTracked}
	h.Age.MaxAgeMicros = 750
	pkt := dataPacket(t, h, "")
	runOne(t, p, pkt, &Meta{IngressPort: 0, EgressPort: -1})
	age, _ := pkt.Age()
	if age.AgeMicros != 100 || age.Aged() {
		t.Fatalf("age %+v", age)
	}
	runOne(t, p, pkt, &Meta{IngressPort: 2, EgressPort: -1})
	age, _ = pkt.Age()
	if age.AgeMicros != 800 || !age.Aged() {
		t.Fatalf("age after port-2 hop %+v", age)
	}
	if at.AgedSeen != 1 {
		t.Fatalf("aged seen %d", at.AgedSeen)
	}
}

func TestAgeTrackerUsesOriginTimestamp(t *testing.T) {
	at := &AgeTracker{PortDeltaMicros: map[int]uint32{WildcardPort: 1}}
	p := NewPipeline(NewContext(nil), at)
	h := wire.Header{ConfigID: 1, Features: wire.FeatAgeTracked | wire.FeatTimestamped}
	h.Timestamp.OriginNanos = uint64(time.Millisecond)
	h.Age.MaxAgeMicros = 100_000
	pkt := dataPacket(t, h, "")
	runOne(t, p, pkt, &Meta{Now: sim.Time(4 * time.Millisecond), EgressPort: -1})
	age, _ := pkt.Age()
	if age.AgeMicros != 3000 {
		t.Fatalf("age %d µs, want 3000", age.AgeMicros)
	}
	// A later element computes from the same origin: age is absolute, not
	// double-counted.
	runOne(t, p, pkt, &Meta{Now: sim.Time(5 * time.Millisecond), EgressPort: -1})
	age, _ = pkt.Age()
	if age.AgeMicros != 4000 {
		t.Fatalf("age %d µs, want 4000", age.AgeMicros)
	}
}

func TestDeadlineMarkerNotifiesAndSuppresses(t *testing.T) {
	dm := &DeadlineMarker{Reporter: wire.AddrFrom(1, 1, 1, 1, 1), SuppressWindow: time.Second}
	p := NewPipeline(NewContext(nil), dm)
	notify := wire.AddrFrom(10, 0, 0, 9, 9)
	mk := func() wire.View {
		h := wire.Header{ConfigID: 1, Features: wire.FeatTimely, Experiment: wire.NewExperimentID(4, 0)}
		h.Deadline.DeadlineNanos = uint64(time.Millisecond)
		h.Deadline.Notify = notify
		return dataPacket(t, h, "")
	}
	meta := &Meta{Now: sim.Time(2 * time.Millisecond), EgressPort: -1}
	runOne(t, p, mk(), meta)
	if len(meta.Mints) != 1 {
		t.Fatalf("mints %d", len(meta.Mints))
	}
	note, err := wire.DecodeDeadlineExceeded(meta.Mints[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if note.DeadlineNanos != uint64(time.Millisecond) || note.ObservedNanos != uint64(2*time.Millisecond) {
		t.Fatalf("note %+v", note)
	}
	if meta.Mints[0].Dst != notify {
		t.Fatal("wrong notify dst")
	}
	// Second late packet within the window: counted but not notified.
	meta2 := &Meta{Now: sim.Time(3 * time.Millisecond), EgressPort: -1}
	runOne(t, p, mk(), meta2)
	if len(meta2.Mints) != 0 {
		t.Fatal("suppression failed")
	}
	if dm.Exceeded != 2 || dm.Notified != 1 {
		t.Fatalf("exceeded=%d notified=%d", dm.Exceeded, dm.Notified)
	}
	// After the window, notify again.
	meta3 := &Meta{Now: sim.Time(1100 * time.Millisecond), EgressPort: -1}
	runOne(t, p, mk(), meta3)
	if len(meta3.Mints) != 1 {
		t.Fatal("window expiry ignored")
	}
}

func TestDeadlineMarkerOnTimePacketUntouched(t *testing.T) {
	dm := &DeadlineMarker{}
	p := NewPipeline(NewContext(nil), dm)
	h := wire.Header{ConfigID: 1, Features: wire.FeatTimely}
	h.Deadline.DeadlineNanos = uint64(time.Second)
	pkt := dataPacket(t, h, "")
	meta := &Meta{Now: sim.Time(time.Millisecond), EgressPort: -1}
	runOne(t, p, pkt, meta)
	if len(meta.Mints) != 0 || dm.Exceeded != 0 {
		t.Fatal("on-time packet flagged")
	}
}

func TestDeadlineMarkerDropExpired(t *testing.T) {
	dm := &DeadlineMarker{DropExpired: true}
	p := NewPipeline(NewContext(nil), dm)
	h := wire.Header{ConfigID: 1, Features: wire.FeatTimely}
	h.Deadline.DeadlineNanos = 1
	pkt := dataPacket(t, h, "")
	meta := &Meta{Now: sim.Time(time.Second), EgressPort: -1}
	runOne(t, p, pkt, meta)
	if !meta.Drop {
		t.Fatal("expired packet not dropped")
	}
}

func TestDuplicatorFansOutAndDecrementsScope(t *testing.T) {
	d := NewDuplicator()
	d.Group(9,
		Copy{Port: 2, Dst: wire.AddrFrom(10, 0, 2, 2, 2)},
		Copy{Port: 3, Dst: wire.AddrFrom(10, 0, 3, 3, 3)},
	)
	p := NewPipeline(NewContext(nil), d)
	h := wire.Header{ConfigID: 1, Features: wire.FeatDuplicate}
	h.Dup.Group, h.Dup.Scope = 9, 2
	pkt := dataPacket(t, h, "alert")
	meta := &Meta{EgressPort: -1}
	runOne(t, p, pkt, meta)
	if len(meta.Copies) != 2 {
		t.Fatalf("copies %d", len(meta.Copies))
	}
	for _, cp := range meta.Copies {
		got, _ := cp.Pkt.Dup()
		if got.Scope != 1 {
			t.Fatalf("copy scope %d", got.Scope)
		}
		if string(cp.Pkt.Payload()) != "alert" {
			t.Fatal("copy payload lost")
		}
	}
	// Original packet keeps its scope.
	if dup, _ := pkt.Dup(); dup.Scope != 2 {
		t.Fatalf("original scope %d", dup.Scope)
	}
	// Scope 0 stops duplication.
	h.Dup.Scope = 0
	pkt0 := dataPacket(t, h, "")
	meta0 := &Meta{EgressPort: -1}
	runOne(t, p, pkt0, meta0)
	if len(meta0.Copies) != 0 {
		t.Fatal("scope 0 duplicated")
	}
}

func TestBackPressureMonitorSignals(t *testing.T) {
	depth := 0
	ctx := NewContext(func(port int) int { return depth })
	bp := &BackPressureMonitor{HighWater: 10, LowWater: 2, RateHintMbps: 500, Reporter: wire.AddrFrom(2, 2, 2, 2, 2)}
	p := NewPipeline(ctx, bp)
	sink := wire.AddrFrom(10, 0, 0, 1, 5)
	mk := func() wire.View {
		h := wire.Header{ConfigID: 1, Features: wire.FeatBackPressure, Experiment: wire.NewExperimentID(3, 0)}
		h.BackPressure.Sink = sink
		return dataPacket(t, h, "")
	}
	// Below low water: nothing.
	depth = 1
	meta := &Meta{EgressPort: 0}
	pkt := mk()
	runOne(t, p, pkt, meta)
	if len(meta.Mints) != 0 {
		t.Fatal("signalled below low water")
	}
	// Above high water: level set and signal minted.
	depth = 50
	meta2 := &Meta{EgressPort: 0}
	pkt2 := mk()
	runOne(t, p, pkt2, meta2)
	ext, _ := pkt2.BackPressure()
	if ext.Level == 0 {
		t.Fatal("level not written")
	}
	if len(meta2.Mints) != 1 {
		t.Fatalf("mints %d", len(meta2.Mints))
	}
	sig, err := wire.DecodeBackPressure(meta2.Mints[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if sig.RateHintMbps != 500 || meta2.Mints[0].Dst != sink {
		t.Fatalf("signal %+v to %v", sig, meta2.Mints[0].Dst)
	}
}

func TestForwarderRoutesAndDrops(t *testing.T) {
	fwd := NewForwarder().Route(wire.AddrFrom(1, 1, 1, 1, 1), 3)
	p := NewPipeline(NewContext(nil), fwd)
	pkt := dataPacket(t, wire.Header{ConfigID: 1}, "")
	meta := &Meta{Dst: wire.AddrFrom(1, 1, 1, 1, 1), EgressPort: -1}
	runOne(t, p, pkt, meta)
	if meta.EgressPort != 3 {
		t.Fatalf("egress %d", meta.EgressPort)
	}
	meta2 := &Meta{Dst: wire.AddrFrom(9, 9, 9, 9, 9), EgressPort: -1}
	pkt2 := dataPacket(t, wire.Header{ConfigID: 1}, "")
	runOne(t, p, pkt2, meta2)
	if !meta2.Drop || fwd.NoRoute != 1 {
		t.Fatal("unroutable packet not dropped")
	}
	fwd.SetDefault(7)
	meta3 := &Meta{Dst: wire.AddrFrom(9, 9, 9, 9, 9), EgressPort: -1}
	pkt3 := dataPacket(t, wire.Header{ConfigID: 1}, "")
	runOne(t, p, pkt3, meta3)
	if meta3.EgressPort != 7 {
		t.Fatal("default route ignored")
	}
}

func TestExperimentCounter(t *testing.T) {
	ctx := NewContext(nil)
	p := NewPipeline(ctx, ExperimentCounter{})
	pkt := dataPacket(t, wire.Header{ConfigID: 1, Experiment: wire.NewExperimentID(6, 2)}, "xyz")
	runOne(t, p, pkt, &Meta{EgressPort: -1})
	if c := ctx.Counter("exp/6"); c.Packets != 1 || c.Bytes != uint64(len(pkt)) {
		t.Fatalf("counter %+v", c)
	}
	if c := ctx.Counter("exp/6/slice/2"); c.Packets != 1 {
		t.Fatal("slice counter missing")
	}
}

func TestPipelineErrorDropsPacket(t *testing.T) {
	// A sequencer applied to a packet claiming FeatSequenced but truncated
	// before the extension bytes triggers a stage error.
	seqr := &Sequencer{}
	p := NewPipeline(NewContext(nil), seqr)
	pkt := dataPacket(t, wire.Header{ConfigID: 1, Features: wire.FeatSequenced}, "")
	pkt = pkt[:wire.CoreHeaderLen+2] // truncate the seq extension
	meta := &Meta{EgressPort: -1}
	if _, err := p.Run(pkt, meta); err == nil {
		t.Fatal("expected error")
	}
	if !meta.Drop || p.Errors != 1 {
		t.Fatal("error did not drop packet")
	}
}

func TestPolicerEnforcesPace(t *testing.T) {
	ctx := NewContext(nil)
	pol := &Policer{}
	p := NewPipeline(ctx, pol)
	mk := func() wire.View {
		h := wire.Header{ConfigID: 1, Features: wire.FeatPaced, Experiment: wire.NewExperimentID(2, 0)}
		h.Pace = wire.PaceExt{RateMbps: 8, BurstKB: 8} // 1 MB/s, 8 KB burst
		return dataPacket(t, h, string(make([]byte, 4000)))
	}
	// Burst of 5 packets at t=1ms: the 8 KB bucket passes 2, drops 3.
	var dropped int
	for i := 0; i < 5; i++ {
		meta := &Meta{Now: sim.Time(time.Millisecond), EgressPort: -1}
		runOne(t, p, mk(), meta)
		if meta.Drop {
			dropped++
		}
	}
	if pol.Conformed != 2 || dropped != 3 {
		t.Fatalf("conformed=%d dropped=%d", pol.Conformed, dropped)
	}
	// 8 ms later the bucket accrues 8 KB: two more packets pass.
	meta := &Meta{Now: sim.Time(9 * time.Millisecond), EgressPort: -1}
	runOne(t, p, mk(), meta)
	if meta.Drop {
		t.Fatal("refilled bucket still dropping")
	}
	// A different experiment has its own meter.
	h := wire.Header{ConfigID: 1, Features: wire.FeatPaced, Experiment: wire.NewExperimentID(3, 0)}
	h.Pace = wire.PaceExt{RateMbps: 8, BurstKB: 8}
	meta2 := &Meta{Now: sim.Time(9 * time.Millisecond), EgressPort: -1}
	runOne(t, p, dataPacket(t, h, string(make([]byte, 4000))), meta2)
	if meta2.Drop {
		t.Fatal("per-experiment isolation broken")
	}
	// Unpaced and unmetered packets pass untouched.
	plain := dataPacket(t, wire.Header{ConfigID: 1}, "")
	meta3 := &Meta{Now: sim.Time(9 * time.Millisecond), EgressPort: -1}
	runOne(t, p, plain, meta3)
	if meta3.Drop {
		t.Fatal("unpaced packet policed")
	}
}
