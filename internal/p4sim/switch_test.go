package p4sim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// switchRig wires hostA ── switch ── hostB with the given stages.
type switchRig struct {
	nw           *netsim.Network
	a, b         *netsim.Host
	aNode, bNode *netsim.Node
	sw           *Switch
	swNode       *netsim.Node
	aAddr, bAddr wire.Addr
}

func newSwitchRig(t *testing.T, latency time.Duration, stages ...Stage) *switchRig {
	t.Helper()
	r := &switchRig{
		nw:    netsim.New(1),
		a:     &netsim.Host{},
		b:     &netsim.Host{},
		aAddr: wire.AddrFrom(10, 0, 0, 1, 1),
		bAddr: wire.AddrFrom(10, 0, 0, 2, 1),
	}
	fwd := NewForwarder().Route(r.aAddr, 0).Route(r.bAddr, 1)
	r.sw = NewSwitch(fwd, latency, stages...)
	r.swNode = r.nw.AddNode("sw", wire.Addr{}, r.sw)
	r.aNode = r.nw.AddNode("a", r.aAddr, r.a)
	r.bNode = r.nw.AddNode("b", r.bAddr, r.b)
	r.nw.Connect(r.swNode, r.aNode, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Microsecond})
	r.nw.Connect(r.swNode, r.bNode, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Microsecond})
	return r
}

func (r *switchRig) sendDMTP(t *testing.T, h wire.Header, payload string) {
	t.Helper()
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.aNode.SendTo(r.bAddr, append(data, payload...))
}

func TestSwitchForwardsDMTPThroughPipeline(t *testing.T) {
	seqr := &Sequencer{}
	rig := newSwitchRig(t, 400*time.Nanosecond, seqr)
	var got []wire.View
	rig.b.Recv = func(f *netsim.Frame) { got = append(got, wire.View(f.Data)) }

	for i := 0; i < 3; i++ {
		rig.sendDMTP(t, wire.Header{ConfigID: 1, Features: wire.FeatSequenced}, "x")
	}
	rig.nw.Loop().Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if seq, _ := v.Seq(); seq != uint64(i+1) {
			t.Fatalf("frame %d seq %d", i, seq)
		}
	}
	if rig.sw.Pipeline.Processed != 3 {
		t.Fatalf("processed %d", rig.sw.Pipeline.Processed)
	}
}

func TestSwitchPipelineLatencyApplied(t *testing.T) {
	const lat = 10 * time.Microsecond
	rig := newSwitchRig(t, lat)
	var at time.Duration
	rig.b.Recv = func(f *netsim.Frame) { at = time.Duration(rig.nw.Now()) }
	rig.sendDMTP(t, wire.Header{ConfigID: 1}, "")
	rig.nw.Loop().Run()
	// 2 links (1 µs each + tiny serialization) + 10 µs pipeline.
	if at < lat+2*time.Microsecond || at > lat+10*time.Microsecond {
		t.Fatalf("delivery at %v, want ≈%v", at, lat+2*time.Microsecond)
	}
}

func TestSwitchPassesThroughNonDMTP(t *testing.T) {
	rig := newSwitchRig(t, 400*time.Nanosecond)
	var got [][]byte
	rig.b.Recv = func(f *netsim.Frame) { got = append(got, f.Data) }
	// A baseline-style frame: first byte in the control range but not a
	// decodable DMTP control; still forwarded because control packets
	// have only the core header. Use genuinely non-DMTP junk instead.
	junk := []byte{0xEE, 0xFF, 0xFF, 0xFF, 1, 2} // undefined feature bits + short
	rig.aNode.SendTo(rig.bAddr, junk)
	rig.nw.Loop().Run()
	if len(got) != 1 || rig.sw.PassedThrough != 1 {
		t.Fatalf("passthrough failed: got %d, counter %d", len(got), rig.sw.PassedThrough)
	}
	if rig.sw.Pipeline.Processed != 0 {
		t.Fatal("junk frame hit the pipeline")
	}
}

func TestSwitchDropsUnroutableDMTP(t *testing.T) {
	rig := newSwitchRig(t, 400*time.Nanosecond)
	h := wire.Header{ConfigID: 1}
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.aNode.SendTo(wire.AddrFrom(99, 99, 99, 99, 99), data)
	rig.nw.Loop().Run()
	if rig.sw.Dropped != 1 {
		t.Fatalf("dropped %d", rig.sw.Dropped)
	}
}

func TestSwitchEmitsMintsAndCopies(t *testing.T) {
	// Deadline marker mints a notification to host A while the data
	// packet continues to host B; a duplicator also copies it to A.
	dm := &DeadlineMarker{Reporter: wire.AddrFrom(1, 1, 1, 1, 1)}
	dup := NewDuplicator()
	rig := newSwitchRig(t, 400*time.Nanosecond, dm, dup)
	dup.Group(3, Copy{Port: -1, Dst: rig.aAddr})

	var toA, toB int
	var sawNote bool
	rig.a.Recv = func(f *netsim.Frame) {
		toA++
		if _, err := wire.DecodeDeadlineExceeded(f.Data); err == nil {
			sawNote = true
		}
	}
	rig.b.Recv = func(f *netsim.Frame) { toB++ }

	h := wire.Header{ConfigID: 1, Features: wire.FeatTimely | wire.FeatDuplicate}
	h.Deadline.DeadlineNanos = 1 // long past at processing time
	h.Deadline.Notify = rig.aAddr
	h.Dup.Group, h.Dup.Scope = 3, 1
	rig.nw.Loop().After(time.Millisecond, func() {
		rig.sendDMTP(t, h, "payload")
	})
	rig.nw.Loop().Run()

	if toB != 1 {
		t.Fatalf("primary deliveries %d", toB)
	}
	if toA != 2 { // one mint + one duplicate copy
		t.Fatalf("deliveries to A: %d", toA)
	}
	if !sawNote {
		t.Fatal("deadline notification missing")
	}
	if dup.Duplicated != 1 || dm.Notified != 1 {
		t.Fatalf("dup=%d notified=%d", dup.Duplicated, dm.Notified)
	}
}

func TestSwitchDropReasonOnPipelineError(t *testing.T) {
	seqr := &Sequencer{}
	rig := newSwitchRig(t, 400*time.Nanosecond, seqr)
	// Claim FeatSequenced but truncate the extension: stage error → drop.
	h := wire.Header{ConfigID: 1, Features: wire.FeatSequenced}
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.aNode.SendTo(rig.bAddr, data[:wire.CoreHeaderLen+3])
	rig.nw.Loop().Run()
	// Truncated extensions fail Check at ingress → treated as non-DMTP
	// and forwarded by dst; that is the desired fail-open behaviour.
	if rig.sw.Pipeline.Errors != 0 {
		t.Fatalf("pipeline errors %d", rig.sw.Pipeline.Errors)
	}
	if rig.sw.PassedThrough != 1 {
		t.Fatalf("passthrough %d", rig.sw.PassedThrough)
	}
}

func TestBackPressureMonitorReadsRealQueues(t *testing.T) {
	bp := &BackPressureMonitor{HighWater: 2, LowWater: 0, RateHintMbps: 100, Reporter: wire.AddrFrom(9, 9, 9, 9, 9)}
	fwd := NewForwarder()
	nw := netsim.New(2)
	aAddr := wire.AddrFrom(10, 0, 0, 1, 1)
	bAddr := wire.AddrFrom(10, 0, 0, 2, 1)
	sw := NewSwitch(fwd, 0, fwd, bp)
	swNode := nw.AddNode("sw", wire.Addr{}, sw)
	a, b := &netsim.Host{}, &netsim.Host{}
	aNode := nw.AddNode("a", aAddr, a)
	bNode := nw.AddNode("b", bAddr, b)
	nw.Connect(swNode, aNode, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Microsecond})
	// Slow egress toward b so its queue builds.
	nw.Connect(swNode, bNode, netsim.LinkConfig{RateBps: netsim.Mbps(10), Delay: time.Microsecond, QueueBytes: 1 << 20})
	fwd.Route(aAddr, 0).Route(bAddr, 1)

	var signals int
	a.Recv = func(f *netsim.Frame) {
		if _, err := wire.DecodeBackPressure(f.Data); err == nil {
			signals++
		}
	}
	h := wire.Header{ConfigID: 1, Features: wire.FeatBackPressure}
	h.BackPressure.Sink = aAddr
	pkt, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt = append(pkt, make([]byte, 4000)...)
	for i := 0; i < 50; i++ {
		aNode.SendTo(bAddr, append([]byte(nil), pkt...))
	}
	nw.Loop().Run()
	if signals == 0 {
		t.Fatal("no back-pressure signals despite queue buildup")
	}
	if bp.Signalled == 0 {
		t.Fatal("monitor counted nothing")
	}
}
