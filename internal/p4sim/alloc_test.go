package p4sim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// buildPilotChain returns a pipeline shaped like the pilot's border switch —
// every non-reshaping per-packet stage — plus a packet that exercises all of
// them.
func buildPilotChain(t *testing.T) (*Pipeline, wire.View, *Meta) {
	t.Helper()
	fwd := NewForwarder().Route(wire.Addr{IP: [4]byte{10, 0, 0, 2}, Port: 1}, 1)
	pipe := NewPipeline(NewContext(nil),
		&Sequencer{},
		&AgeTracker{PortDeltaMicros: map[int]uint32{WildcardPort: 50}},
		&DeadlineMarker{SuppressWindow: time.Second},
		&Policer{},
		ExperimentCounter{},
		fwd,
	)
	h := wire.Header{
		ConfigID:   1,
		Features:   wire.FeatSequenced | wire.FeatReliable | wire.FeatAgeTracked | wire.FeatTimely | wire.FeatTimestamped | wire.FeatPaced,
		Experiment: wire.NewExperimentID(12, 1),
	}
	h.Age.MaxAgeMicros = 1 << 30
	h.Deadline.DeadlineNanos = 1 << 62
	h.Pace.RateMbps = 100000
	pkt, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt = append(pkt, make([]byte, 512)...)
	meta := &Meta{}
	return pipe, wire.View(pkt), meta
}

// TestProcessChainZeroAlloc locks in the per-packet steady state of the
// pipeline: after the first packet warms the register arrays and counter
// caches, running the full non-reshaping stage chain allocates nothing.
func TestProcessChainZeroAlloc(t *testing.T) {
	pipe, pkt, meta := buildPilotChain(t)
	dst := wire.Addr{IP: [4]byte{10, 0, 0, 2}, Port: 1}
	var now int64
	run := func() {
		// Advance virtual time so the policer's token bucket refills
		// between packets, as it would under a real packet cadence.
		now += int64(time.Microsecond)
		meta.Reset(sim.Time(now), 0, wire.Addr{}, dst)
		if _, err := pipe.Run(pkt, meta); err != nil {
			t.Fatal(err)
		}
		if meta.Drop {
			t.Fatalf("unexpected drop: %s", meta.DropReason)
		}
	}
	run() // warm-up: registers, counter cache, map buckets
	// A sequenced packet keeps its number, so steady state is the common
	// retransmission-free case: seq already assigned.
	if avg := testing.AllocsPerRun(500, run); avg != 0 {
		t.Fatalf("Process chain allocates %.1f allocs/op, want 0", avg)
	}
}

// TestMetaResetPreservesCapacity verifies Reset keeps the Copies/Mints
// backing arrays (the point of the scratch Meta) while clearing state.
func TestMetaResetPreservesCapacity(t *testing.T) {
	m := &Meta{}
	m.Copies = append(m.Copies, Copy{Port: 3})
	m.Mints = append(m.Mints, Mint{}, Mint{})
	m.Drop = true
	m.DropReason = "x"
	m.EgressPort = 7
	m.NewDst = wire.Addr{IP: [4]byte{1, 2, 3, 4}}
	capCopies, capMints := cap(m.Copies), cap(m.Mints)
	m.Reset(42, 2, wire.Addr{IP: [4]byte{9, 9, 9, 9}}, wire.Addr{IP: [4]byte{8, 8, 8, 8}})
	if len(m.Copies) != 0 || len(m.Mints) != 0 {
		t.Fatalf("Reset kept entries: %d copies, %d mints", len(m.Copies), len(m.Mints))
	}
	if cap(m.Copies) != capCopies || cap(m.Mints) != capMints {
		t.Fatal("Reset dropped backing arrays")
	}
	if m.Drop || m.DropReason != "" || m.EgressPort != -1 || !m.NewDst.IsZero() {
		t.Fatalf("Reset left stale state: %+v", m)
	}
	if m.Now != 42 || m.IngressPort != 2 {
		t.Fatalf("Reset did not install new state: %+v", m)
	}
}

// TestExperimentCounterCache verifies the memoized counters are the same
// objects the named lookup returns, so diagnostics reading ctx.Counter by
// name see the counts recorded through the cache.
func TestExperimentCounterCache(t *testing.T) {
	ctx := NewContext(nil)
	pipe := NewPipeline(ctx, ExperimentCounter{})
	h := wire.Header{ConfigID: 0, Experiment: wire.NewExperimentID(5, 2)}
	pkt, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	meta := &Meta{EgressPort: -1}
	for i := 0; i < 3; i++ {
		if _, err := pipe.Run(pkt, meta); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctx.Counter("exp/5").Packets; got != 3 {
		t.Fatalf("exp counter %d, want 3", got)
	}
	if got := ctx.Counter("exp/5/slice/2").Packets; got != 3 {
		t.Fatalf("slice counter %d, want 3", got)
	}
}
