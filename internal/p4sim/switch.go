package p4sim

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Switch attaches a Pipeline to the simulated network: a netsim.Handler
// that parses each arriving frame as DMTP, runs the pipeline after a fixed
// pipeline latency, and emits the processed packet, its multicast copies,
// and any minted control packets. Non-DMTP frames are forwarded unprocessed
// (the hardware analogue: the parser falls through to plain L2/L3
// forwarding), so baseline TCP/UDP traffic crosses the same boxes.
type Switch struct {
	node     *netsim.Node
	Pipeline *Pipeline
	Fwd      *Forwarder
	// Latency models the pipeline traversal time. Tofino-class hardware
	// is some hundreds of nanoseconds port to port.
	Latency time.Duration
	// Dropped counts pipeline-dropped packets.
	Dropped uint64
	// PassedThrough counts non-DMTP frames forwarded unprocessed.
	PassedThrough uint64

	// meta is the per-switch scratch metadata bus, Reset before each
	// packet. The event loop is single-threaded and the pipeline run is
	// synchronous, so one scratch Meta per switch suffices even with
	// several frames in flight through the pipeline latency.
	meta Meta
	// jobFree recycles the per-frame pipeline-latency jobs.
	jobFree *swJob
}

// swJob carries one frame across the pipeline-latency delay without
// allocating a closure per frame: the run closure is bound once when the
// job is first allocated, and the job then cycles through the switch's
// free list (safe without locks — jobs are created and recycled on the
// single-threaded event loop).
type swJob struct {
	sw      *Switch
	ingress int
	f       *netsim.Frame
	pkt     wire.View
	run     func()
	next    *swJob
}

func (s *Switch) getJob() *swJob {
	if j := s.jobFree; j != nil {
		s.jobFree = j.next
		j.next = nil
		return j
	}
	j := &swJob{sw: s}
	j.run = j.process
	return j
}

// NewSwitch builds a switch whose pipeline runs the given stages followed
// by the forwarder (which must be included in stages where ordering
// matters; if stages omit fwd it is appended last).
func NewSwitch(fwd *Forwarder, latency time.Duration, stages ...Stage) *Switch {
	hasFwd := false
	for _, s := range stages {
		if s == fwd {
			hasFwd = true
			break
		}
	}
	if !hasFwd {
		stages = append(stages, fwd)
	}
	sw := &Switch{Fwd: fwd, Latency: latency}
	ctx := NewContext(func(port int) int {
		if sw.node == nil || port < 0 || port >= len(sw.node.Ports) {
			return 0
		}
		return sw.node.Port(port).QueueDepth()
	})
	sw.Pipeline = NewPipeline(ctx, stages...)
	return sw
}

// Attach implements netsim.Handler.
func (s *Switch) Attach(n *netsim.Node) { s.node = n }

// Node returns the attached node.
func (s *Switch) Node() *netsim.Node { return s.node }

// HandleFrame implements netsim.Handler.
func (s *Switch) HandleFrame(ingress *netsim.Port, f *netsim.Frame) {
	pkt := wire.View(f.Data)
	if _, err := pkt.Check(); err != nil {
		// Not DMTP: plain forwarding.
		s.PassedThrough++
		if port, ok := s.Fwd.Lookup(f.Dst); ok && port != ingress.Index {
			s.node.Port(port).Send(f)
		}
		return
	}
	job := s.getJob()
	job.ingress, job.f, job.pkt = ingress.Index, f, pkt
	s.node.Net.Loop().After(s.Latency, job.run)
}

// process runs the pipeline for one delayed frame. It recycles the job
// before doing the work so re-entrant HandleFrame calls (a stage emitting
// through a port looped back to this switch) can reuse it.
func (j *swJob) process() {
	s, ingress, f, pkt := j.sw, j.ingress, j.f, j.pkt
	j.f, j.pkt = nil, nil
	j.next = s.jobFree
	s.jobFree = j

	meta := &s.meta
	meta.Reset(s.node.Net.Now(), ingress, f.Src, f.Dst)
	out, _ := s.Pipeline.Run(pkt, meta)
	// Minted control packets are routed independently of the data
	// packet's fate.
	for _, mint := range meta.Mints {
		if port, ok := s.Fwd.Lookup(mint.Dst); ok {
			s.node.Port(port).Send(&netsim.Frame{
				Src:  s.node.Addr,
				Dst:  mint.Dst,
				Data: mint.Data,
				Born: s.node.Net.Now(),
			})
		}
	}
	for _, cp := range meta.Copies {
		data := cp.Pkt
		if data == nil {
			data = out.Clone()
		}
		port := cp.Port
		if port < 0 {
			var ok bool
			if port, ok = s.Fwd.Lookup(cp.Dst); !ok {
				continue
			}
		}
		s.node.Port(port).Send(&netsim.Frame{
			Src:  f.Src,
			Dst:  cp.Dst,
			Data: data,
			Born: f.Born,
			Hops: f.Hops,
		})
	}
	if meta.Drop || meta.EgressPort < 0 {
		s.Dropped++
		return
	}
	dst := f.Dst
	if !meta.NewDst.IsZero() {
		dst = meta.NewDst
	}
	s.node.Port(meta.EgressPort).Send(&netsim.Frame{
		Src:  f.Src,
		Dst:  dst,
		Data: out,
		Born: f.Born,
		Hops: f.Hops,
	})
}
