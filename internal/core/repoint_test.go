package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// repointPath builds the paper's §5.1 scenario: two WAN segments with a
// mid-path exchange-point buffer between them.
//
//	sensor ── DTN1 ──(WAN1: 20 ms)── MID ──(WAN2: 20 ms, lossy)── DTN2
//
// Without repointing, DTN2 recovers from DTN1 (≈80 ms RTT); with the MID
// buffer adopting transit packets, recovery is a 40 ms round trip.
func repointPath(t *testing.T, repoint bool, loss float64) (*netsim.Network, *BufferNode, *BufferNode, *Receiver) {
	t.Helper()
	nw := netsim.New(6)
	sensorAddr := wire.AddrFrom(10, 14, 0, 1, 1)
	dtn1Addr := wire.AddrFrom(10, 14, 1, 1, 1)
	midAddr := wire.AddrFrom(10, 14, 2, 1, 1)
	dstAddr := wire.AddrFrom(10, 14, 3, 1, 1)

	rcv := NewReceiver(nw, "dtn2", dstAddr, ReceiverConfig{
		NAKDelay: 200 * time.Microsecond,
		NAKRetry: 100 * time.Millisecond, // covers even the far-buffer RTT
		MaxNAKs:  8,
	})
	mid := NewBufferNode(nw, "mid", midAddr, BufferConfig{
		UpgradeFrom:  0xEE, // never matches: MID only adopts transit
		Upgrade:      ModeWAN,
		Forward:      dstAddr,
		ForwardPort:  1,
		StashTransit: repoint,
		Routes:       map[wire.Addr]int{sensorAddr: 0, dtn1Addr: 0},
	})
	dtn1 := NewBufferNode(nw, "dtn1", dtn1Addr, BufferConfig{
		UpgradeFrom: ModeBare.ConfigID,
		Upgrade:     ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      time.Second,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	snd := NewSender(nw, "sensor", sensorAddr, SenderConfig{
		Experiment: 4, Dst: dtn1Addr, Mode: ModeBare,
	})
	nw.Connect(snd.Node(), dtn1.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 10 * time.Microsecond})
	nw.Connect(dtn1.Node(), mid.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 20 * time.Millisecond})
	nw.Connect(mid.Node(), rcv.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(10), Delay: 20 * time.Millisecond, LossProb: loss})

	snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 4000, Interval: 20 * time.Microsecond, Count: 1500, Seed: 2,
	}))
	nw.Loop().Run()
	return nw, dtn1, mid, rcv
}

func TestMidPathBufferRepointing(t *testing.T) {
	const loss = 5e-3
	_, dtn1Far, midOff, rcvFar := repointPath(t, false, loss)
	_, dtn1Near, midOn, rcvNear := repointPath(t, true, loss)

	// Both configurations deliver everything.
	for _, rcv := range []*Receiver{rcvFar, rcvNear} {
		if rcv.Stats.Lost != 0 || rcv.Stats.Delivered < 1500 {
			t.Fatalf("incomplete delivery: %+v", rcv.Stats)
		}
	}
	// Without repointing, NAKs travel to DTN1; with it, to MID.
	if dtn1Far.Stats.Retransmits == 0 || midOff.Stats.Retransmits != 0 {
		t.Fatalf("far config served from wrong buffer: dtn1=%d mid=%d",
			dtn1Far.Stats.Retransmits, midOff.Stats.Retransmits)
	}
	if midOn.Stats.Retransmits == 0 || dtn1Near.Stats.Retransmits != 0 {
		t.Fatalf("near config served from wrong buffer: dtn1=%d mid=%d",
			dtn1Near.Stats.Retransmits, midOn.Stats.Retransmits)
	}
	if midOn.Stats.Repointed == 0 {
		t.Fatal("no packets repointed")
	}
	// The headline claim: the closer buffer roughly halves recovery time
	// (80 ms RTT to DTN1 vs 40 ms to MID).
	far := time.Duration(rcvFar.RecoveryHist.Quantile(0.5))
	near := time.Duration(rcvNear.RecoveryHist.Quantile(0.5))
	if near >= far {
		t.Fatalf("repointing did not shorten recovery: near %v vs far %v", near, far)
	}
	if far < 75*time.Millisecond || far > 110*time.Millisecond {
		t.Fatalf("far recovery %v, want ≈80 ms", far)
	}
	if near < 35*time.Millisecond || near > 60*time.Millisecond {
		t.Fatalf("near recovery %v, want ≈40 ms", near)
	}
}

func TestRepointedRetransmissionsAreDeduplicated(t *testing.T) {
	// Retransmissions from MID pass through no further buffer, but the
	// receiver must still dedupe if both a late original and a
	// retransmission arrive.
	_, _, mid, rcv := repointPath(t, true, 2e-2)
	if mid.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions at 2% loss")
	}
	if rcv.Stats.Lost != 0 {
		t.Fatalf("lost %d", rcv.Stats.Lost)
	}
	// Every sequence delivered at most once to the application.
	if rcv.Stats.Delivered != 1500 {
		t.Fatalf("delivered %d (dups leaked through?)", rcv.Stats.Delivered)
	}
}
