package core

import (
	"time"

	"repro/internal/dmtp"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/tracespan"
	"repro/internal/wire"
)

// ReceiverConfig configures a destination DTN (DTN 2 in Fig. 4).
type ReceiverConfig struct {
	// NAKDelay is the reorder tolerance: how long after detecting a gap
	// the first NAK is sent. Zero means 500 µs.
	NAKDelay time.Duration
	// NAKRetry is the retransmission-request timeout; it should cover the
	// round trip to the nearest buffer. Zero means 5 ms. Retries back off
	// exponentially with seeded jitter, capped at NAKRetryMax.
	NAKRetry time.Duration
	// NAKRetryMax caps the exponential backoff between retries; zero
	// means 500 ms. Without the cap a large MaxNAKs overflows the shift
	// into a sub-tick retry spin.
	NAKRetryMax time.Duration
	// MaxNAKs bounds recovery attempts per sequence number before the
	// packet is declared lost. Zero means 5.
	MaxNAKs int
	// Seed drives the NAK retry jitter. Multi-receiver simulations give
	// each receiver its own seed so synchronized gaps don't NAK in
	// lockstep (the live path always jittered; the engine unifies it).
	Seed int64
	// MaxSeqJump bounds the forward sequence jump accepted from a single
	// packet (corruption guard); zero means dmtp.DefaultMaxSeqJump.
	// Fault campaigns that flip header bits tighten this so a corrupted
	// sequence field cannot demand absurd gap state.
	MaxSeqJump uint64
	// OnGap reports each sequence number written off as permanently lost
	// after MaxNAKs — the deliver-with-gap degradation signal.
	OnGap func(exp wire.ExperimentID, seq uint64)
	// OnNAK, when non-nil, observes every NAK sent (experiment and
	// requested ranges); the conformance suite records these.
	OnNAK func(exp wire.ExperimentID, ranges []wire.SeqRange)
	// Counters, when non-nil, records recoveries and permanent losses
	// (normally shared with a faults.Plan's counter set).
	Counters *telemetry.CounterSet
	// AckInterval, when nonzero, emits cumulative ACKs to the buffer so
	// it can trim acknowledged packets.
	AckInterval time.Duration
	// Cipher decrypts FeatEncrypted payloads.
	Cipher Cipher
	// Ordered buffers sequenced messages and delivers them in sequence
	// order instead of on arrival. DMTP itself is message-based (Req 7);
	// this opt-in exists for consumers that genuinely need ordering and
	// for the head-of-line-blocking ablation, which shows the blocking
	// cost is a property of ordered delivery, not of TCP specifically.
	Ordered bool
	// OnMessage delivers each received DAQ message (decrypted payload).
	// DMTP is message-based: delivery is immediate and unordered; the
	// sequence machinery exists for completeness accounting and recovery,
	// not for imposing a bytestream order (Req 7, paper §4.1 on
	// head-of-line blocking).
	OnMessage func(m Message)
	// Recorder, when non-nil, receives the engine's flight-recorder
	// events stamped with virtual time. Nil disables flight recording.
	Recorder *metrics.FlightRecorder
	// Tracer, when non-nil, collects span records from sampled FeatTraced
	// deliveries. Untraced and sampled-out messages never touch it.
	Tracer *tracespan.Collector
}

// Message is one delivered DAQ message with transport-level metadata.
// It is the engine's message type; both substrates deliver it.
type Message = dmtp.Message

// ReceiverStats are cumulative receiver counters (the engine's).
type ReceiverStats = dmtp.ReceiverStats

// Receiver is the downstream DMTP endpoint: it delivers messages, detects
// loss from sequence gaps, recovers from the nearest upstream buffer via
// NAKs, and performs the destination timeliness check. The protocol state
// machine lives in dmtp.ReceiverEngine; this type adapts it to the
// simulator substrate (netsim frames in, virtual-time timers, loop-run
// delivery callbacks).
type Receiver struct {
	cfg  ReceiverConfig
	node *netsim.Node
	nw   *netsim.Network
	eng  *dmtp.ReceiverEngine

	Stats ReceiverStats
	// LatencyHist records origin→delivery latency.
	LatencyHist *telemetry.Histogram
	// RecoveryHist records gap-detection→recovery latency.
	RecoveryHist *telemetry.Histogram
	// Meter counts delivered goodput bytes.
	Meter telemetry.Meter
	// OrderedHOL records, for ordered delivery, how long each fully
	// received message waited behind earlier gaps.
	OrderedHOL *telemetry.Histogram
}

// NewReceiver creates a receiver and registers its node on the network.
func NewReceiver(nw *netsim.Network, name string, addr wire.Addr, cfg ReceiverConfig) *Receiver {
	r := NewReceiverHandler(nw, cfg)
	r.node = nw.AddNode(name, addr, r)
	return r
}

// NewReceiverHandler creates a receiver without registering a node, for
// callers that wrap it in a decorating handler (e.g. discovery.Wrap); the
// node is bound via Attach when the wrapper is registered.
func NewReceiverHandler(nw *netsim.Network, cfg ReceiverConfig) *Receiver {
	if cfg.NAKDelay == 0 {
		cfg.NAKDelay = 500 * time.Microsecond
	}
	if cfg.NAKRetry == 0 {
		cfg.NAKRetry = 5 * time.Millisecond
	}
	if cfg.NAKRetryMax == 0 {
		cfg.NAKRetryMax = 500 * time.Millisecond
	}
	if cfg.MaxNAKs == 0 {
		cfg.MaxNAKs = 5
	}
	r := &Receiver{
		cfg:          cfg,
		nw:           nw,
		LatencyHist:  telemetry.NewHistogram(),
		RecoveryHist: telemetry.NewHistogram(),
		OrderedHOL:   telemetry.NewHistogram(),
	}
	r.eng = dmtp.NewReceiverEngine(loopClock{nw}, nodeDatapath{node: func() *netsim.Node { return r.node }, nw: nw, port: -1},
		dmtp.ReceiverConfig{
			NAKDelay:        cfg.NAKDelay,
			NAKRetry:        cfg.NAKRetry,
			NAKRetryMax:     cfg.NAKRetryMax,
			MaxNAKs:         cfg.MaxNAKs,
			Seed:            cfg.Seed,
			MaxSeqJump:      cfg.MaxSeqJump,
			AckInterval:     cfg.AckInterval,
			Ordered:         cfg.Ordered,
			OnGap:           cfg.OnGap,
			OnNAK:           cfg.OnNAK,
			Counters:        cfg.Counters,
			FinalizePayload: r.finalizePayload,
			Deliver:         r.handOver,
			Stats:           &r.Stats,
			LatencyHist:     r.LatencyHist,
			RecoveryHist:    r.RecoveryHist,
			OrderedHOL:      r.OrderedHOL,
			Recorder:        cfg.Recorder,
			Tracer:          cfg.Tracer,
		})
	return r
}

// Node returns the receiver's network node.
func (r *Receiver) Node() *netsim.Node { return r.node }

// Addr returns the receiver's address.
func (r *Receiver) Addr() wire.Addr { return r.node.Addr }

// Attach implements netsim.Handler.
func (r *Receiver) Attach(n *netsim.Node) {
	r.node = n
	r.eng.SetSelf(n.Addr)
}

// OutstandingGaps returns the number of sequence numbers currently awaiting
// recovery across all streams.
func (r *Receiver) OutstandingGaps() int { return r.eng.OutstandingGaps() }

// RegisterMetrics publishes the receiver's dmtp.rx.* metric set on reg via
// the shared helpers, so a simulator receiver exports exactly the names a
// live daemon does. The simulator loop is single-threaded: sample the
// registry from loop context or after the run has drained.
func (r *Receiver) RegisterMetrics(reg *metrics.Registry) {
	dmtp.RegisterReceiverMetrics(reg, func() dmtp.ReceiverStats { return r.Stats })
	dmtp.RegisterReceiverGauges(reg, r.OutstandingGaps, func() (int64, int64) {
		return r.LatencyHist.Quantile(0.5), r.LatencyHist.Quantile(0.99)
	})
	dmtp.RegisterPoolMetrics(reg)
}

// HandleFrame implements netsim.Handler.
func (r *Receiver) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil {
		return
	}
	if v.IsControl() {
		return // receivers ignore control traffic addressed to them
	}
	r.eng.Ingest(v)
}

// finalizePayload decrypts FeatEncrypted payloads; plain payloads alias
// the frame (simulator frames outlive delivery).
func (r *Receiver) finalizePayload(v wire.View) []byte {
	payload := v.Payload()
	if v.Features().Has(wire.FeatEncrypted) && r.cfg.Cipher != nil {
		if ext, err := cipherExt(v); err == nil {
			// Decrypt a copy: the view may alias a buffered frame.
			dec := append([]byte(nil), payload...)
			r.cfg.Cipher.Open(ext.KeyEpoch, ext.Nonce, dec)
			return dec
		}
	}
	return payload
}

// handOver delivers a finalized message to the application.
func (r *Receiver) handOver(msg Message) {
	r.Meter.Add(len(msg.Payload))
	if r.cfg.OnMessage != nil {
		r.cfg.OnMessage(msg)
	}
}

func cipherExt(v wire.View) (wire.CipherExt, error) {
	off, err := v.Features().ExtOffset(wire.FeatEncrypted)
	if err != nil {
		return wire.CipherExt{}, err
	}
	b := v[wire.CoreHeaderLen+off:]
	return wire.CipherExt{
		KeyEpoch: uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		Nonce:    uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}, nil
}
