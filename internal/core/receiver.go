package core

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ReceiverConfig configures a destination DTN (DTN 2 in Fig. 4).
type ReceiverConfig struct {
	// NAKDelay is the reorder tolerance: how long after detecting a gap
	// the first NAK is sent. Zero means 500 µs.
	NAKDelay time.Duration
	// NAKRetry is the retransmission-request timeout; it should cover the
	// round trip to the nearest buffer. Zero means 5 ms. Retries back off
	// exponentially, capped at NAKRetryMax.
	NAKRetry time.Duration
	// NAKRetryMax caps the exponential backoff between retries; zero
	// means 500 ms. Without the cap a large MaxNAKs overflows the shift
	// into a sub-tick retry spin.
	NAKRetryMax time.Duration
	// MaxNAKs bounds recovery attempts per sequence number before the
	// packet is declared lost. Zero means 5.
	MaxNAKs int
	// OnGap reports each sequence number written off as permanently lost
	// after MaxNAKs — the deliver-with-gap degradation signal.
	OnGap func(exp wire.ExperimentID, seq uint64)
	// Counters, when non-nil, records recoveries and permanent losses
	// (normally shared with a faults.Plan's counter set).
	Counters *telemetry.CounterSet
	// AckInterval, when nonzero, emits cumulative ACKs to the buffer so
	// it can trim acknowledged packets.
	AckInterval time.Duration
	// Cipher decrypts FeatEncrypted payloads.
	Cipher Cipher
	// Ordered buffers sequenced messages and delivers them in sequence
	// order instead of on arrival. DMTP itself is message-based (Req 7);
	// this opt-in exists for consumers that genuinely need ordering and
	// for the head-of-line-blocking ablation, which shows the blocking
	// cost is a property of ordered delivery, not of TCP specifically.
	Ordered bool
	// OnMessage delivers each received DAQ message (decrypted payload).
	// DMTP is message-based: delivery is immediate and unordered; the
	// sequence machinery exists for completeness accounting and recovery,
	// not for imposing a bytestream order (Req 7, paper §4.1 on
	// head-of-line blocking).
	OnMessage func(m Message)
}

// Message is one delivered DAQ message with transport-level metadata.
type Message struct {
	Experiment wire.ExperimentID
	Seq        uint64 // 0 when the stream is unsequenced
	Payload    []byte
	// Latency is origin-to-delivery time when the packet carried an
	// origin timestamp; otherwise -1.
	Latency time.Duration
	// Aged reports the in-network age flag.
	Aged bool
	// Late reports a missed delivery deadline, checked at the
	// destination (pilot mode 3).
	Late bool
	// Recovered marks messages restored via NAK retransmission.
	Recovered bool
}

// ReceiverStats are cumulative receiver counters.
type ReceiverStats struct {
	Received    uint64
	Bytes       uint64
	Delivered   uint64
	Duplicates  uint64
	GapsSeen    uint64
	NAKsSent    uint64
	Recovered   uint64
	Lost        uint64 // given up after MaxNAKs
	Aged        uint64
	Late        uint64
	Unsequenced uint64
}

type missing struct {
	detected sim.Time
	naks     int
	nextNAK  sim.Time
}

type streamState struct {
	exp          wire.ExperimentID
	maxSeen      uint64
	floor        uint64 // every seq ≤ floor is received or written off
	received     map[uint64]bool
	missing      map[uint64]*missing
	buffer       wire.Addr // most recent retransmission-buffer pointer
	timer        sim.Timer
	lastActivity sim.Time
	ackArmed     bool
	// Ordered-delivery state: messages awaiting their turn and the next
	// sequence number to hand to the application.
	pending     map[uint64]*pendingMsg
	nextDeliver uint64
}

type pendingMsg struct {
	msg     Message
	arrived sim.Time
}

// Receiver is the downstream DMTP endpoint: it delivers messages, detects
// loss from sequence gaps, recovers from the nearest upstream buffer via
// NAKs, and performs the destination timeliness check.
type Receiver struct {
	cfg  ReceiverConfig
	node *netsim.Node
	nw   *netsim.Network

	Stats ReceiverStats
	// LatencyHist records origin→delivery latency.
	LatencyHist *telemetry.Histogram
	// RecoveryHist records gap-detection→recovery latency.
	RecoveryHist *telemetry.Histogram
	// Meter counts delivered goodput bytes.
	Meter telemetry.Meter
	// OrderedHOL records, for ordered delivery, how long each fully
	// received message waited behind earlier gaps.
	OrderedHOL *telemetry.Histogram

	streams map[wire.ExperimentID]*streamState
}

// NewReceiver creates a receiver and registers its node on the network.
func NewReceiver(nw *netsim.Network, name string, addr wire.Addr, cfg ReceiverConfig) *Receiver {
	r := NewReceiverHandler(nw, cfg)
	r.node = nw.AddNode(name, addr, r)
	return r
}

// NewReceiverHandler creates a receiver without registering a node, for
// callers that wrap it in a decorating handler (e.g. discovery.Wrap); the
// node is bound via Attach when the wrapper is registered.
func NewReceiverHandler(nw *netsim.Network, cfg ReceiverConfig) *Receiver {
	if cfg.NAKDelay == 0 {
		cfg.NAKDelay = 500 * time.Microsecond
	}
	if cfg.NAKRetry == 0 {
		cfg.NAKRetry = 5 * time.Millisecond
	}
	if cfg.NAKRetryMax == 0 {
		cfg.NAKRetryMax = 500 * time.Millisecond
	}
	if cfg.MaxNAKs == 0 {
		cfg.MaxNAKs = 5
	}
	return &Receiver{
		cfg:          cfg,
		nw:           nw,
		LatencyHist:  telemetry.NewHistogram(),
		RecoveryHist: telemetry.NewHistogram(),
		OrderedHOL:   telemetry.NewHistogram(),
		streams:      make(map[wire.ExperimentID]*streamState),
	}
}

// Node returns the receiver's network node.
func (r *Receiver) Node() *netsim.Node { return r.node }

// Addr returns the receiver's address.
func (r *Receiver) Addr() wire.Addr { return r.node.Addr }

// Attach implements netsim.Handler.
func (r *Receiver) Attach(n *netsim.Node) { r.node = n }

// OutstandingGaps returns the number of sequence numbers currently awaiting
// recovery across all streams.
func (r *Receiver) OutstandingGaps() int {
	n := 0
	for _, st := range r.streams {
		n += len(st.missing)
	}
	return n
}

// HandleFrame implements netsim.Handler.
func (r *Receiver) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil {
		return
	}
	if v.IsControl() {
		return // receivers ignore control traffic addressed to them
	}
	r.Stats.Received++
	r.Stats.Bytes += uint64(len(v))
	feats := v.Features()
	exp := v.Experiment()

	msg := Message{Experiment: exp, Latency: -1}
	if feats.Has(wire.FeatTimestamped) {
		if origin, err := v.OriginTimestamp(); err == nil && origin > 0 {
			msg.Latency = time.Duration(r.nw.Now().Nanos() - origin)
			r.LatencyHist.ObserveDuration(msg.Latency)
		}
	}
	if feats.Has(wire.FeatAgeTracked) {
		if age, err := v.Age(); err == nil {
			aged := age.Aged()
			// Destination timeliness check (pilot mode 3): the receiver
			// recomputes the final age from the origin timestamp, so a
			// budget blown on the last segment is caught even though no
			// network element sits there to update the field.
			if !aged && age.MaxAgeMicros > 0 && msg.Latency >= 0 &&
				uint64(msg.Latency/time.Microsecond) >= uint64(age.MaxAgeMicros) {
				aged = true
			}
			if aged {
				msg.Aged = true
				r.Stats.Aged++
			}
		}
	}
	if feats.Has(wire.FeatTimely) {
		if deadline, _, err := v.Deadline(); err == nil && deadline != 0 && r.nw.Now().Nanos() > deadline {
			msg.Late = true
			r.Stats.Late++
		}
	}

	if !feats.Has(wire.FeatSequenced) {
		r.Stats.Unsequenced++
		r.deliver(v, msg)
		return
	}
	seq, err := v.Seq()
	if err != nil || seq == 0 {
		r.Stats.Unsequenced++
		r.deliver(v, msg)
		return
	}
	msg.Seq = seq

	st := r.stream(exp)
	if feats.Has(wire.FeatReliable) {
		if buf, err := v.RetransmitBuffer(); err == nil && !buf.IsZero() {
			st.buffer = buf
		}
	}
	if seq <= st.floor || st.received[seq] {
		r.Stats.Duplicates++
		return
	}
	st.received[seq] = true
	if m, wasMissing := st.missing[seq]; wasMissing {
		delete(st.missing, seq)
		// Only arrivals that needed a NAK count as recovered; a packet
		// that shows up before the first NAK fires was merely reordered,
		// not lost.
		if m.naks > 0 {
			msg.Recovered = true
			r.Stats.Recovered++
			r.cfg.Counters.Inc(telemetry.CounterRecovered)
			r.RecoveryHist.ObserveDuration(r.nw.Now().Sub(m.detected))
		}
	}
	if seq > st.maxSeen {
		for s := st.maxSeen + 1; s < seq; s++ {
			if s > st.floor && !st.received[s] {
				st.missing[s] = &missing{
					detected: r.nw.Now(),
					nextNAK:  r.nw.Now().Add(r.cfg.NAKDelay),
				}
				r.Stats.GapsSeen++
			}
		}
		st.maxSeen = seq
	}
	r.advanceFloor(st)
	r.armTimer(st)
	if r.cfg.Ordered {
		st.pending[seq] = &pendingMsg{msg: r.finalize(v, msg), arrived: r.nw.Now()}
		r.flushOrdered(st)
		return
	}
	r.deliver(v, msg)
}

// flushOrdered hands over every pending message whose turn has come,
// skipping sequence numbers that were written off as lost.
func (r *Receiver) flushOrdered(st *streamState) {
	for st.nextDeliver <= st.maxSeen {
		if pm, ok := st.pending[st.nextDeliver]; ok {
			delete(st.pending, st.nextDeliver)
			r.OrderedHOL.ObserveDuration(r.nw.Now().Sub(pm.arrived))
			r.handOver(pm.msg)
			st.nextDeliver++
			continue
		}
		if st.nextDeliver <= st.floor {
			st.nextDeliver++ // written off as lost; skip its slot
			continue
		}
		return // still awaiting recovery
	}
}

func (r *Receiver) deliver(v wire.View, msg Message) {
	r.handOver(r.finalize(v, msg))
}

// finalize decrypts the payload and completes the message.
func (r *Receiver) finalize(v wire.View, msg Message) Message {
	payload := v.Payload()
	if v.Features().Has(wire.FeatEncrypted) && r.cfg.Cipher != nil {
		if ext, err := cipherExt(v); err == nil {
			// Decrypt a copy: the view may alias a buffered frame.
			dec := append([]byte(nil), payload...)
			r.cfg.Cipher.Open(ext.KeyEpoch, ext.Nonce, dec)
			payload = dec
		}
	}
	msg.Payload = payload
	return msg
}

// handOver delivers a finalized message to the application.
func (r *Receiver) handOver(msg Message) {
	r.Stats.Delivered++
	r.Meter.Add(len(msg.Payload))
	if r.cfg.OnMessage != nil {
		r.cfg.OnMessage(msg)
	}
}

func cipherExt(v wire.View) (wire.CipherExt, error) {
	off, err := v.Features().ExtOffset(wire.FeatEncrypted)
	if err != nil {
		return wire.CipherExt{}, err
	}
	b := v[wire.CoreHeaderLen+off:]
	return wire.CipherExt{
		KeyEpoch: uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		Nonce:    uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
	}, nil
}

func (r *Receiver) stream(exp wire.ExperimentID) *streamState {
	st, ok := r.streams[exp]
	if !ok {
		st = &streamState{
			exp:         exp,
			received:    make(map[uint64]bool),
			missing:     make(map[uint64]*missing),
			pending:     make(map[uint64]*pendingMsg),
			nextDeliver: 1,
		}
		r.streams[exp] = st
	}
	st.lastActivity = r.nw.Now()
	if r.cfg.AckInterval > 0 && !st.ackArmed {
		st.ackArmed = true
		r.scheduleAck(st)
	}
	return st
}

func (r *Receiver) advanceFloor(st *streamState) {
	for st.received[st.floor+1] {
		delete(st.received, st.floor+1)
		st.floor++
	}
}

// armTimer (re)schedules the NAK timer for the earliest pending action.
func (r *Receiver) armTimer(st *streamState) {
	if len(st.missing) == 0 {
		st.timer.Stop()
		st.timer = sim.Timer{}
		return
	}
	var earliest sim.Time
	first := true
	for _, m := range st.missing {
		if first || m.nextNAK < earliest {
			earliest = m.nextNAK
			first = false
		}
	}
	if st.timer.Pending() {
		if st.timer.When() <= earliest {
			return
		}
		st.timer.Stop()
	}
	if earliest < r.nw.Now() {
		earliest = r.nw.Now()
	}
	st.timer = r.nw.Loop().At(earliest, func() {
		st.timer = sim.Timer{}
		r.fireNAKs(st)
	})
}

func (r *Receiver) fireNAKs(st *streamState) {
	now := r.nw.Now()
	var due []uint64
	for seq, m := range st.missing {
		if m.nextNAK > now {
			continue
		}
		if m.naks >= r.cfg.MaxNAKs {
			// Give up: count as lost and stop tracking, so delivery
			// degrades to deliver-with-gap instead of NAKing forever.
			delete(st.missing, seq)
			st.received[seq] = true // write off so the floor advances
			r.Stats.Lost++
			r.cfg.Counters.Inc(telemetry.CounterPermanentLoss)
			if r.cfg.OnGap != nil {
				r.cfg.OnGap(st.exp, seq)
			}
			continue
		}
		due = append(due, seq)
		m.naks++
		m.nextNAK = now.Add(r.retryBackoff(m.naks))
	}
	r.advanceFloor(st)
	if r.cfg.Ordered {
		r.flushOrdered(st) // written-off slots unblock ordered delivery
	}
	if len(due) > 0 && !st.buffer.IsZero() {
		nak := wire.NAK{
			Experiment: st.exp,
			Requester:  r.node.Addr,
			Ranges:     toRanges(due),
		}
		if data, err := nak.AppendTo(nil); err == nil {
			r.node.SendTo(st.buffer, data)
			r.Stats.NAKsSent++
		}
	}
	r.armTimer(st)
}

// retryBackoff returns the backoff before retry n (1-based): base·2^(n-1)
// clamped to NAKRetryMax. The clamp matters: an unclamped shift overflows
// time.Duration once MaxNAKs exceeds ~40, degenerating into a sub-tick
// retry spin on permanently lost packets.
func (r *Receiver) retryBackoff(n int) time.Duration {
	shift := n - 1
	if shift > 20 {
		shift = 20
	}
	b := r.cfg.NAKRetry << shift
	if b <= 0 || b > r.cfg.NAKRetryMax {
		b = r.cfg.NAKRetryMax
	}
	return b
}

// toRanges compresses a sorted-or-not seq list into inclusive ranges.
func toRanges(seqs []uint64) []wire.SeqRange {
	if len(seqs) == 0 {
		return nil
	}
	// Insertion sort: NAK bursts are small.
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	var out []wire.SeqRange
	cur := wire.SeqRange{From: seqs[0], To: seqs[0]}
	for _, s := range seqs[1:] {
		if s == cur.To || s == cur.To+1 {
			cur.To = s
			continue
		}
		out = append(out, cur)
		cur = wire.SeqRange{From: s, To: s}
	}
	return append(out, cur)
}

func (r *Receiver) scheduleAck(st *streamState) {
	r.nw.Loop().After(r.cfg.AckInterval, func() {
		if st.floor > 0 && !st.buffer.IsZero() {
			ack := wire.Ack{Experiment: st.exp, CumulativeSeq: st.floor, Acker: r.node.Addr}
			if data, err := ack.AppendTo(nil); err == nil {
				r.node.SendTo(st.buffer, data)
			}
		}
		// Stop re-arming once the stream has gone idle, so simulations
		// drain; the next arriving packet re-arms the cycle.
		if r.nw.Now().Sub(st.lastActivity) > 4*r.cfg.AckInterval {
			st.ackArmed = false
			return
		}
		r.scheduleAck(st)
	})
}
