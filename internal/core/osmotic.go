package core

import (
	"repro/internal/baseline"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// OsmoticGateway integrates low-volume, dispersed sensors with the DMTP
// infrastructure — the paper's §6 open challenge (3): osmotic-computing
// sensors "lack a DAQ network — instead they rely on cell networks and
// backhaul. We believe that TCP is adequate for these low-volume streams
// … but finding suitable transport modes would better integrate these
// sensors with other research infrastructure."
//
// The gateway terminates each sensor's TCP stream (the adequate transport
// over telecom backhaul) and re-emits every delineated message as a DMTP
// mode-0 datagram toward the first-line DTN, where it joins the large
// instruments' streams and picks up the same multi-modal treatment.
// Sensor-facing ports are learned from ingress; the DTN-facing uplink is
// set with SetUplink after the topology is wired.
type OsmoticGateway struct {
	nw      *netsim.Network
	node    *netsim.Node
	dtn     wire.Addr
	dtnPort int
	// Experiment tags the gateway's aggregated stream; each TCP flow ID
	// maps to an instrument slice so per-sensor attribution survives
	// (Req 8 applied to dispersed sensors).
	experiment uint32

	flows map[uint16]*gatewayFlow

	// Ingested counts messages accepted from sensors; Emitted counts
	// DMTP datagrams sent onward.
	Ingested, Emitted uint64
}

type gatewayFlow struct {
	rcv   *baseline.TCPReceiver
	slice uint8
	port  int // sensor-facing port, learned from ingress
}

// NewOsmoticGateway creates the gateway and registers its node.
func NewOsmoticGateway(nw *netsim.Network, name string, addr, dtn wire.Addr, experiment uint32) *OsmoticGateway {
	g := &OsmoticGateway{nw: nw, dtn: dtn, experiment: experiment, flows: make(map[uint16]*gatewayFlow)}
	g.node = nw.AddNode(name, addr, g)
	return g
}

// Node returns the gateway's node.
func (g *OsmoticGateway) Node() *netsim.Node { return g.node }

// SetUplink names the port facing the DTN.
func (g *OsmoticGateway) SetUplink(port int) { g.dtnPort = port }

// AddSensor registers a TCP-attached sensor: its flow ID, its peer
// address, and the instrument slice its data should carry.
func (g *OsmoticGateway) AddSensor(peer wire.Addr, flow uint16, slice uint8) {
	gf := &gatewayFlow{slice: slice, port: -1}
	rcv := baseline.NewTCPReceiverOn(g.nw, g.node, peer, flow,
		func(dst wire.Addr, data []byte) {
			if gf.port < 0 {
				return // no segment seen yet; nothing to ACK anyway
			}
			g.node.Port(gf.port).Send(&netsim.Frame{Src: g.node.Addr, Dst: dst, Data: data, Born: g.nw.Now()})
		})
	gf.rcv = rcv
	rcv.OnMessage = func(m baseline.TCPMessage) {
		g.Ingested++
		g.emit(m.Payload, gf.slice)
	}
	g.flows[flow] = gf
}

func (g *OsmoticGateway) emit(msg []byte, slice uint8) {
	h := wire.Header{
		ConfigID:   ModeBare.ConfigID,
		Experiment: wire.NewExperimentID(g.experiment, slice),
	}
	pkt, err := h.AppendTo(make([]byte, 0, wire.CoreHeaderLen+len(msg)))
	if err != nil {
		return
	}
	pkt = append(pkt, msg...)
	g.node.Port(g.dtnPort).Send(&netsim.Frame{Src: g.node.Addr, Dst: g.dtn, Data: pkt, Born: g.nw.Now()})
	g.Emitted++
}

// Attach implements netsim.Handler.
func (g *OsmoticGateway) Attach(n *netsim.Node) { g.node = n }

// HandleFrame implements netsim.Handler: TCP segments from sensors are
// demultiplexed by flow ID; everything else is ignored (the DTN side never
// addresses the gateway).
func (g *OsmoticGateway) HandleFrame(ingress *netsim.Port, f *netsim.Frame) {
	seg, err := baseline.DecodeSegment(f.Data)
	if err != nil || seg.Type != baseline.SegData {
		return
	}
	if gf, ok := g.flows[seg.FlowID]; ok {
		gf.port = ingress.Index
		gf.rcv.OnData(seg)
	}
}
