package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// reorderPath wires sensor → DTN → receiver with a jittery (reordering)
// but lossless WAN.
func reorderPath(t *testing.T, nakDelay time.Duration) (*netsim.Network, *Sender, *BufferNode, *Receiver) {
	t.Helper()
	nw := netsim.New(9)
	sensorAddr := wire.AddrFrom(10, 12, 0, 1, 1)
	dtnAddr := wire.AddrFrom(10, 12, 1, 1, 1)
	dstAddr := wire.AddrFrom(10, 12, 2, 1, 1)
	rcv := NewReceiver(nw, "dst", dstAddr, ReceiverConfig{
		NAKDelay: nakDelay,
		NAKRetry: 40 * time.Millisecond,
	})
	dtn := NewBufferNode(nw, "dtn", dtnAddr, BufferConfig{
		UpgradeFrom: ModeBare.ConfigID,
		Upgrade:     ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      time.Second,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	snd := NewSender(nw, "sensor", sensorAddr, SenderConfig{
		Experiment: 3, Dst: dtnAddr, Mode: ModeBare,
	})
	nw.Connect(snd.Node(), dtn.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 10 * time.Microsecond})
	// Jitter up to 300 µs on a 10 ms WAN: heavy reordering, zero loss.
	nw.Connect(dtn.Node(), rcv.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(10), Delay: 10 * time.Millisecond, Jitter: 300 * time.Microsecond})
	return nw, snd, dtn, rcv
}

func TestReorderToleranceAbsorbsJitter(t *testing.T) {
	// NAK delay (1 ms) exceeds the jitter (300 µs): reordering must not
	// trigger a single NAK, and everything is delivered exactly once.
	nw, snd, dtn, rcv := reorderPath(t, time.Millisecond)
	snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000, Interval: 20 * time.Microsecond, Count: 1000, Seed: 1,
	}))
	nw.Loop().Run()
	if rcv.Stats.Delivered != 1000 || rcv.Stats.Duplicates != 0 {
		t.Fatalf("delivered %d dups %d", rcv.Stats.Delivered, rcv.Stats.Duplicates)
	}
	if rcv.Stats.GapsSeen == 0 {
		t.Fatal("jitter produced no transient gaps; test is vacuous")
	}
	if rcv.Stats.NAKsSent != 0 || dtn.Stats.NAKs != 0 {
		t.Fatalf("spurious NAKs under pure reordering: %d sent", rcv.Stats.NAKsSent)
	}
	if rcv.Stats.Lost != 0 || rcv.Stats.Recovered != 0 {
		t.Fatalf("loss accounting corrupted by reordering: %+v", rcv.Stats)
	}
}

func TestTinyNAKDelayCausesSpuriousRecovery(t *testing.T) {
	// The ablation direction: an aggressive NAK delay (10 µs) below the
	// jitter makes the receiver request retransmission of packets that
	// are merely late, wasting buffer work on duplicates.
	nw, snd, dtn, rcv := reorderPath(t, 10*time.Microsecond)
	snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000, Interval: 20 * time.Microsecond, Count: 1000, Seed: 1,
	}))
	nw.Loop().Run()
	if rcv.Stats.Delivered != 1000 {
		t.Fatalf("delivered %d", rcv.Stats.Delivered)
	}
	if rcv.Stats.NAKsSent == 0 || dtn.Stats.Retransmits == 0 {
		t.Fatal("aggressive NAK delay produced no spurious recovery; test is vacuous")
	}
	if rcv.Stats.Duplicates == 0 {
		t.Fatal("spurious retransmissions should arrive as duplicates")
	}
}
