package core

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// BufferConfig configures a first-line DTN buffer node (DTN 1 in Fig. 4).
type BufferConfig struct {
	// UpgradeFrom is the config ID of arriving sensor traffic (usually
	// ModeBare's).
	UpgradeFrom uint8
	// Upgrade is the mode installed for the WAN crossing (usually ModeWAN).
	Upgrade Mode
	// Forward is the downstream destination (DTN 2).
	Forward wire.Addr
	// ForwardPort is the egress port toward the WAN; other ports face the
	// DAQ network.
	ForwardPort int
	// MaxAge is the age budget installed into upgraded packets.
	MaxAge time.Duration
	// DeadlineBudget is the delivery deadline installed into upgraded
	// packets; zero leaves the deadline unset even if the mode is timely.
	DeadlineBudget time.Duration
	// DeadlineNotify is where on-path elements report late packets
	// (normally the sensor or an operations host).
	DeadlineNotify wire.Addr
	// BackPressureSink is where on-path elements send congestion signals
	// (normally the sensor).
	BackPressureSink wire.Addr
	// CapacityBytes bounds the retransmission buffer; oldest packets are
	// evicted first. Zero means 64 MiB.
	CapacityBytes int
	// Cipher, when non-nil and the upgrade mode includes FeatEncrypted,
	// encrypts payloads at the DTN (Req 5; the sensor stays cheap).
	Cipher   Cipher
	KeyEpoch uint32
	// Routes overrides egress for specific destinations (e.g. control
	// traffic heading back into the DAQ network); everything else leaves
	// via ForwardPort.
	Routes map[wire.Addr]int
	// StashTransit makes the node buffer sequenced data packets passing
	// through it (not just ones it upgrades) and repoint their
	// retransmission-buffer field to itself — the paper's "more 'recent'
	// (lower RTT) retransmission buffer" (§1, §5.1): downstream receivers
	// then recover from this closer node instead of the WAN entrance.
	StashTransit bool
}

// BufferStats are cumulative buffer-node counters.
type BufferStats struct {
	Upgraded      uint64
	Forwarded     uint64
	Buffered      uint64
	BufferedBytes uint64
	Evicted       uint64
	Trimmed       uint64 // dropped after cumulative ACK
	NAKs          uint64
	Retransmits   uint64
	Misses        uint64 // NAKed sequence numbers no longer buffered
	Repointed     uint64 // transit packets re-homed to this buffer
	Crashes       uint64 // Crash() invocations (chaos testing)
	DroppedDown   uint64 // frames discarded while crashed
}

type bufKey struct {
	exp wire.ExperimentID
	seq uint64
}

// BufferNode is the first-line DTN: it upgrades sensor streams into the
// WAN mode, assigns sequence numbers, buffers sequenced packets, and serves
// retransmissions on NAK — the paper's "closer source" that shortens
// recovery RTT relative to retransmitting from the instrument (§5.1).
type BufferNode struct {
	cfg  BufferConfig
	node *netsim.Node
	nw   *netsim.Network

	Stats BufferStats

	seqs  map[wire.ExperimentID]uint64
	store map[bufKey][]byte
	order []bufKey // FIFO for eviction
	bytes int
	down  bool // crashed: all traffic is discarded until Restart
}

// NewBufferNode creates a buffer node and registers it on the network.
func NewBufferNode(nw *netsim.Network, name string, addr wire.Addr, cfg BufferConfig) *BufferNode {
	b := NewBufferHandler(nw, cfg)
	b.node = nw.AddNode(name, addr, b)
	return b
}

// NewBufferHandler creates a buffer node without registering a node, for
// callers that wrap it in a decorating handler (e.g. discovery.Wrap); the
// node is bound via Attach when the wrapper is registered.
func NewBufferHandler(nw *netsim.Network, cfg BufferConfig) *BufferNode {
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 64 << 20
	}
	return &BufferNode{
		cfg:   cfg,
		nw:    nw,
		seqs:  make(map[wire.ExperimentID]uint64),
		store: make(map[bufKey][]byte),
	}
}

// Node returns the buffer's network node.
func (b *BufferNode) Node() *netsim.Node { return b.node }

// Addr returns the buffer's address (what upgraded headers point at).
func (b *BufferNode) Addr() wire.Addr { return b.node.Addr }

// BufferedBytes returns current buffer occupancy.
func (b *BufferNode) BufferedBytes() int { return b.bytes }

// Attach implements netsim.Handler.
func (b *BufferNode) Attach(n *netsim.Node) { b.node = n }

// Crash models the DTN process dying: from now until Restart every
// arriving frame — data, NAKs, ACKs, transit — is discarded, and the
// retransmission buffer is lost. Sequence counters survive (the journalled
// state a production relay recovers); buffered payloads do not, so
// post-Restart NAKs for pre-crash packets meet a cold buffer.
func (b *BufferNode) Crash() {
	if b.down {
		return
	}
	b.down = true
	b.Stats.Crashes++
	b.store = make(map[bufKey][]byte)
	b.order = nil
	b.bytes = 0
}

// Restart brings a crashed node back into service with a cold buffer.
func (b *BufferNode) Restart() { b.down = false }

// IsDown reports whether the node is crashed.
func (b *BufferNode) IsDown() bool { return b.down }

// HandleFrame implements netsim.Handler.
func (b *BufferNode) HandleFrame(ingress *netsim.Port, f *netsim.Frame) {
	if b.down {
		b.Stats.DroppedDown++
		return
	}
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil {
		return
	}
	if v.IsControl() {
		b.handleControl(ingress, f, v)
		return
	}
	if f.Dst != b.node.Addr && !f.Dst.IsZero() {
		// Transit data traffic: optionally adopt it (stash + repoint),
		// then route onward.
		if b.cfg.StashTransit {
			b.adoptTransit(v)
		}
		b.forwardRaw(f)
		return
	}
	if v.ConfigID() != b.cfg.UpgradeFrom {
		// Already upgraded or an unknown mode: pass through downstream.
		b.send(b.cfg.ForwardPort, b.cfg.Forward, f.Data)
		b.Stats.Forwarded++
		return
	}
	b.upgradeAndForward(v)
}

func (b *BufferNode) upgradeAndForward(v wire.View) {
	up, err := v.Reshape(b.cfg.Upgrade.ConfigID, b.cfg.Upgrade.Features)
	if err != nil {
		return
	}
	feats := up.Features()
	exp := up.Experiment()
	var seq uint64
	if feats.Has(wire.FeatSequenced) {
		b.seqs[exp]++
		seq = b.seqs[exp]
		up.SetSeq(seq)
	}
	if feats.Has(wire.FeatReliable) {
		up.SetRetransmitBuffer(b.node.Addr)
	}
	if feats.Has(wire.FeatAgeTracked) && b.cfg.MaxAge > 0 {
		up.SetMaxAge(uint32(b.cfg.MaxAge / time.Microsecond))
	}
	if feats.Has(wire.FeatTimely) && b.cfg.DeadlineBudget > 0 {
		up.SetDeadline(b.nw.Now().Add(b.cfg.DeadlineBudget).Nanos(), b.cfg.DeadlineNotify)
	}
	if feats.Has(wire.FeatBackPressure) {
		off, err := feats.ExtOffset(wire.FeatBackPressure)
		if err == nil {
			ext := up[wire.CoreHeaderLen+off:]
			copy(ext[:4], b.cfg.BackPressureSink.IP[:])
			ext[4] = byte(b.cfg.BackPressureSink.Port >> 8)
			ext[5] = byte(b.cfg.BackPressureSink.Port)
		}
	}
	if feats.Has(wire.FeatTimestamped) {
		if ts, err := up.OriginTimestamp(); err == nil && ts == 0 {
			up.SetOriginTimestamp(b.nw.Now().Nanos())
		}
	}
	if feats.Has(wire.FeatEncrypted) && b.cfg.Cipher != nil {
		nonce := uint32(seq)
		off, _ := feats.ExtOffset(wire.FeatEncrypted)
		ext := up[wire.CoreHeaderLen+off:]
		ext[0], ext[1], ext[2], ext[3] = byte(b.cfg.KeyEpoch>>24), byte(b.cfg.KeyEpoch>>16), byte(b.cfg.KeyEpoch>>8), byte(b.cfg.KeyEpoch)
		ext[4], ext[5], ext[6], ext[7] = byte(nonce>>24), byte(nonce>>16), byte(nonce>>8), byte(nonce)
		b.cfg.Cipher.Seal(b.cfg.KeyEpoch, nonce, up.Payload())
	}
	b.Stats.Upgraded++
	if feats.Has(wire.FeatSequenced) {
		b.stash(exp, seq, up)
	}
	b.send(b.cfg.ForwardPort, b.cfg.Forward, up)
	b.Stats.Forwarded++
}

// adoptTransit buffers a sequenced transit packet and rewrites its
// retransmission pointer to this node, so downstream NAKs travel a shorter
// round trip. Retransmissions served by an upstream buffer pass through
// here again and are simply re-adopted, which is harmless (same bytes,
// same key).
func (b *BufferNode) adoptTransit(v wire.View) {
	feats := v.Features()
	if !feats.Has(wire.FeatSequenced) || !feats.Has(wire.FeatReliable) {
		return
	}
	seq, err := v.Seq()
	if err != nil || seq == 0 {
		return
	}
	if err := v.SetRetransmitBuffer(b.node.Addr); err != nil {
		return
	}
	b.stash(v.Experiment(), seq, v)
	b.Stats.Repointed++
}

// stash stores an independent copy: downstream elements mutate headers in
// flight (age, back-pressure level), and the buffer must retransmit the
// packet as it left this node.
func (b *BufferNode) stash(exp wire.ExperimentID, seq uint64, pkt wire.View) {
	cp := pkt.Clone()
	k := bufKey{exp, seq}
	for b.bytes+len(cp) > b.cfg.CapacityBytes && len(b.order) > 0 {
		oldest := b.order[0]
		b.order = b.order[1:]
		if old, ok := b.store[oldest]; ok {
			b.bytes -= len(old)
			delete(b.store, oldest)
			b.Stats.Evicted++
		}
	}
	b.store[k] = cp
	b.order = append(b.order, k)
	b.bytes += len(cp)
	b.Stats.Buffered++
	b.Stats.BufferedBytes += uint64(len(cp))
}

func (b *BufferNode) handleControl(ingress *netsim.Port, f *netsim.Frame, v wire.View) {
	if f.Dst != b.node.Addr {
		b.forwardRaw(f)
		return
	}
	switch v.ConfigID() {
	case wire.ConfigNAK:
		nak, err := wire.DecodeNAK(f.Data)
		if err != nil {
			return
		}
		b.Stats.NAKs++
		b.serveNAK(nak)
	case wire.ConfigAck:
		ack, err := wire.DecodeAck(f.Data)
		if err != nil {
			return
		}
		b.trim(ack.Experiment, ack.CumulativeSeq)
	}
}

func (b *BufferNode) serveNAK(nak *wire.NAK) {
	for _, r := range nak.Ranges {
		for seq := r.From; seq <= r.To && r.To >= r.From; seq++ {
			if pkt, ok := b.store[bufKey{nak.Experiment, seq}]; ok {
				// Retransmit a fresh copy directly to the requester.
				b.send(b.cfg.ForwardPort, nak.Requester, wire.View(pkt).Clone())
				b.Stats.Retransmits++
			} else {
				b.Stats.Misses++
			}
			if seq == r.To { // avoid uint64 wrap on To == MaxUint64
				break
			}
		}
	}
}

// trim drops buffered packets up to and including cum.
func (b *BufferNode) trim(exp wire.ExperimentID, cum uint64) {
	kept := b.order[:0]
	for _, k := range b.order {
		if k.exp == exp && k.seq <= cum {
			if old, ok := b.store[k]; ok {
				b.bytes -= len(old)
				delete(b.store, k)
				b.Stats.Trimmed++
			}
			continue
		}
		kept = append(kept, k)
	}
	b.order = kept
}

func (b *BufferNode) send(port int, dst wire.Addr, data []byte) {
	b.node.Port(port).Send(&netsim.Frame{
		Src:  b.node.Addr,
		Dst:  dst,
		Data: data,
		Born: b.nw.Now(),
	})
}

// forwardRaw routes a transit frame by destination.
func (b *BufferNode) forwardRaw(f *netsim.Frame) {
	port := b.cfg.ForwardPort
	if p, ok := b.cfg.Routes[f.Dst]; ok {
		port = p
	}
	b.node.Port(port).Send(f)
}
