package core

import (
	"fmt"
	"time"

	"repro/internal/dmtp"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// BufferConfig configures a first-line DTN buffer node (DTN 1 in Fig. 4).
type BufferConfig struct {
	// UpgradeFrom is the config ID of arriving sensor traffic (usually
	// ModeBare's).
	UpgradeFrom uint8
	// Upgrade is the mode installed for the WAN crossing (usually ModeWAN).
	Upgrade Mode
	// Forward is the downstream destination (DTN 2).
	Forward wire.Addr
	// ForwardPort is the egress port toward the WAN; other ports face the
	// DAQ network.
	ForwardPort int
	// MaxAge is the age budget installed into upgraded packets.
	MaxAge time.Duration
	// DeadlineBudget is the delivery deadline installed into upgraded
	// packets; zero leaves the deadline unset even if the mode is timely.
	DeadlineBudget time.Duration
	// DeadlineNotify is where on-path elements report late packets
	// (normally the sensor or an operations host).
	DeadlineNotify wire.Addr
	// BackPressureSink is where on-path elements send congestion signals
	// (normally the sensor).
	BackPressureSink wire.Addr
	// CapacityBytes bounds the retransmission buffer; oldest packets are
	// evicted first. Zero means 64 MiB.
	CapacityBytes int
	// Cipher, when non-nil and the upgrade mode includes FeatEncrypted,
	// encrypts payloads at the DTN (Req 5; the sensor stays cheap).
	Cipher   Cipher
	KeyEpoch uint32
	// Routes overrides egress for specific destinations (e.g. control
	// traffic heading back into the DAQ network); everything else leaves
	// via ForwardPort.
	Routes map[wire.Addr]int
	// StashTransit makes the node buffer sequenced data packets passing
	// through it (not just ones it upgrades) and repoint their
	// retransmission-buffer field to itself — the paper's "more 'recent'
	// (lower RTT) retransmission buffer" (§1, §5.1): downstream receivers
	// then recover from this closer node instead of the WAN entrance.
	StashTransit bool
	// Shards is the number of buffer shards experiments are partitioned
	// across (zero means 1). The simulator loop is single-threaded, so
	// sharding here buys no parallelism — it exists so conformance can
	// diff the sharded partitioning logic against the live relay.
	Shards int
	// MaxFlows bounds the flow table; registrations beyond it are
	// rejected. Zero means unlimited.
	MaxFlows int
	// FlowTTL is how long an idle flow stays registered in virtual time
	// (default 60s).
	FlowTTL time.Duration
	// Resolver, when non-nil, maps a new flow (frame source address +
	// experiment ID) to its downstream address and egress port. A zero
	// address rejects the flow. Nil routes every flow to
	// Forward/ForwardPort — resolved at registration, mirroring the
	// live relay's per-flow resolution.
	Resolver func(src wire.Addr, exp wire.ExperimentID) (wire.Addr, int)
	// Recorder, when non-nil, receives flight-recorder events (reshape
	// plus the buffer engine's nak-served / nak-miss / evict / trim /
	// crash / restart) stamped with virtual time. Nil disables recording.
	Recorder *metrics.FlightRecorder
	// JournalDir, when non-empty, enables the stash write-ahead journal
	// (internal/journal): every stash mutation is logged, Crash flushes
	// the log, and Restart replays it so post-crash NAKs meet a warm
	// buffer instead of the cold-start write-off path. The directory is
	// created if missing; an unusable directory panics — on the simulator
	// substrate a bad journal path is a harness configuration error, and
	// NewBufferNode has no error return to thread it through.
	JournalDir string
	// JournalSync is the journal fsync policy (journal.SyncBatch when
	// empty, or SyncNone / SyncAlways).
	JournalSync string
}

// BufferStats are cumulative buffer-node counters: the engine's stash,
// NAK-service and trim counters plus the adapter's forwarding counters.
type BufferStats struct {
	dmtp.BufferStats
	Upgraded    uint64
	Forwarded   uint64
	Repointed   uint64 // transit packets re-homed to this buffer
	DroppedDown uint64 // frames discarded while crashed
}

// BufferNode is the first-line DTN: it upgrades sensor streams into the
// WAN mode, assigns sequence numbers, buffers sequenced packets, and serves
// retransmissions on NAK — the paper's "closer source" that shortens
// recovery RTT relative to retransmitting from the instrument (§5.1).
// The stash, NAK service, cumulative trim and crash/restart live in
// dmtp.BufferEngine; this type adapts them to the simulator substrate.
type BufferNode struct {
	cfg  BufferConfig
	node *netsim.Node
	nw   *netsim.Network
	eng  *dmtp.ShardedBuffer
	// jset is the per-shard write-ahead journal set (nil without
	// JournalDir).
	jset *journal.Set
	// reshapeC counts reshapes into the node's upgrade config; installed
	// by RegisterMetrics, nil (and skipped) until then.
	reshapeC *metrics.Counter

	// flows maps (frame source, experiment) to a registered downstream
	// route, mirroring the live relay's flow table: registration happens
	// on a flow's first packet and Crash clears the table, so a restart
	// re-resolves every flow.
	flows     map[simFlowKey]*simFlow
	flowStats dmtp.FlowStats
	lastSweep sim.Time

	Stats BufferStats
}

// simFlowKey identifies one flow through the node: the sender's address
// plus the experiment ID carried in the packet header.
type simFlowKey struct {
	src wire.Addr
	exp wire.ExperimentID
}

// simFlow is one registered flow's downstream route and idle clock.
type simFlow struct {
	dst      wire.Addr
	port     int
	lastSeen sim.Time
}

// NewBufferNode creates a buffer node and registers it on the network.
func NewBufferNode(nw *netsim.Network, name string, addr wire.Addr, cfg BufferConfig) *BufferNode {
	b := NewBufferHandler(nw, cfg)
	b.node = nw.AddNode(name, addr, b)
	return b
}

// NewBufferHandler creates a buffer node without registering a node, for
// callers that wrap it in a decorating handler (e.g. discovery.Wrap); the
// node is bound via Attach when the wrapper is registered.
func NewBufferHandler(nw *netsim.Network, cfg BufferConfig) *BufferNode {
	b := &BufferNode{cfg: cfg, nw: nw, flows: make(map[simFlowKey]*simFlow)}
	nsh := cfg.Shards
	if nsh < 1 {
		nsh = 1
	}
	perShard := cfg.CapacityBytes
	if nsh > 1 && perShard > 0 {
		perShard /= nsh
		if perShard < 1 {
			perShard = 1
		}
	}
	if cfg.JournalDir != "" {
		set, err := journal.OpenSet(cfg.JournalDir, nsh, cfg.JournalSync, 0)
		if err != nil {
			panic(fmt.Sprintf("core: opening stash journal: %v", err))
		}
		b.jset = set
	}
	// Retransmissions leave via the WAN egress; the datapath clones
	// stash entries before framing them (the engine keeps ownership).
	// Every shard shares one stats struct — sound under the simulator's
	// single event-loop goroutine — so callers keep reading b.Stats.
	b.eng = dmtp.NewShardedBuffer(nsh, func(i int) *dmtp.BufferEngine {
		var jr dmtp.Journal
		if b.jset != nil {
			jr = b.jset.Shard(i)
		}
		return dmtp.NewBufferEngine(
			nodeDatapath{node: func() *netsim.Node { return b.node }, nw: nw, port: cfg.ForwardPort},
			dmtp.BufferConfig{
				CapacityBytes: perShard,
				Stats:         &b.Stats.BufferStats,
				Recorder:      cfg.Recorder,
				Clock:         loopClock{nw},
				Journal:       jr,
			},
		)
	})
	if b.jset != nil {
		// A journal that survived a previous process restores its stash
		// before the node serves traffic.
		for i := 0; i < nsh; i++ {
			b.restoreShard(i, b.jset.Recovered(i))
		}
	}
	return b
}

// restoreShard replays one shard's recovery into its engine: surviving
// entries re-stashed (without re-journaling) and sequence counters
// raised to the journal's floor.
func (b *BufferNode) restoreShard(i int, rec *journal.Recovered) {
	eng := b.eng.At(i)
	for _, e := range rec.Entries {
		eng.RestoreStash(e.Exp, e.Seq, e.Payload)
	}
	for exp, seq := range rec.Seqs {
		eng.RestoreSeq(exp, seq)
	}
}

// JournalStats returns the journal counters (zero without a journal).
func (b *BufferNode) JournalStats() journal.Stats {
	if b.jset == nil {
		return journal.Stats{}
	}
	return b.jset.Stats()
}

// JournalRecoveries returns the most recent per-shard journal recovery
// (the startup scan, or the last crash replay); nil without a journal.
// The campaign's journal-balance oracle inspects these.
func (b *BufferNode) JournalRecoveries() []*journal.Recovered {
	if b.jset == nil {
		return nil
	}
	return b.jset.Recoveries()
}

// CloseJournal stops the journal writers and closes the segment files.
// The node itself has no other lifecycle on the simulator substrate;
// journaled harnesses (campaign durable cells, tests) must call this
// when the run drains, or the writer goroutines outlive the cell.
func (b *BufferNode) CloseJournal() error {
	if b.jset == nil {
		return nil
	}
	return b.jset.Close()
}

// Node returns the buffer's network node.
func (b *BufferNode) Node() *netsim.Node { return b.node }

// Addr returns the buffer's address (what upgraded headers point at).
func (b *BufferNode) Addr() wire.Addr { return b.node.Addr }

// BufferedBytes returns current buffer occupancy across all shards.
func (b *BufferNode) BufferedBytes() int { return b.eng.BufferedBytes() }

// SeqOf returns the last sequence number this node assigned to exp (zero
// if it never sequenced the experiment). Campaign oracles use it to prove
// sequence state never bleeds across flows.
func (b *BufferNode) SeqOf(exp wire.ExperimentID) uint64 { return b.eng.SeqOf(exp) }

// FlowStats returns the node's flow-table counters.
func (b *BufferNode) FlowStats() dmtp.FlowStats { return b.flowStats }

// flowFor returns the registered flow for (src, exp), registering it on
// first sight. Returns nil when the registration is rejected (table full,
// or the resolver refused the flow).
func (b *BufferNode) flowFor(src wire.Addr, exp wire.ExperimentID) *simFlow {
	now := b.nw.Now()
	k := simFlowKey{src: src, exp: exp}
	if fl, ok := b.flows[k]; ok {
		fl.lastSeen = now
		return fl
	}
	if b.cfg.MaxFlows > 0 && len(b.flows) >= b.cfg.MaxFlows {
		b.flowStats.Rejected++
		return nil
	}
	dst, port := b.cfg.Forward, b.cfg.ForwardPort
	if b.cfg.Resolver != nil {
		dst, port = b.cfg.Resolver(src, exp)
		if dst.IsZero() {
			b.flowStats.Rejected++
			return nil
		}
	}
	fl := &simFlow{dst: dst, port: port, lastSeen: now}
	b.flows[k] = fl
	b.flowStats.Opened++
	b.flowStats.Active++
	return fl
}

// sweepFlows lazily expires idle flows; invoked from the frame path so it
// advances with virtual time, at most once per half-TTL.
func (b *BufferNode) sweepFlows() {
	ttl := b.cfg.FlowTTL
	if ttl <= 0 {
		ttl = 60 * time.Second
	}
	now := b.nw.Now()
	if now-b.lastSweep < sim.Time(ttl)/2 {
		return
	}
	b.lastSweep = now
	for k, fl := range b.flows {
		if now-fl.lastSeen >= sim.Time(ttl) {
			delete(b.flows, k)
			b.flowStats.Expired++
			b.flowStats.Active--
		}
	}
}

// RegisterMetrics publishes the node's metric set on reg: the engine's
// dmtp.buf.* counters (via the shared helper, so names match the live
// relay), the adapter's dmtp.relay.* forwarding counters, and the
// reshape-family counter for the node's upgrade config. The simulator loop
// is single-threaded: sample the registry from loop context or after the
// run has drained.
func (b *BufferNode) RegisterMetrics(reg *metrics.Registry) {
	dmtp.RegisterBufferMetrics(reg,
		func() dmtp.BufferStats { return b.Stats.BufferStats },
		b.BufferedBytes)
	// The simulator loop is single-threaded, so stats and occupancy are
	// trivially consistent: a healthy engine samples exactly 0.
	dmtp.RegisterStashImbalance(reg, func() int64 {
		bs := b.Stats.BufferStats
		return int64(bs.BufferedBytes) - int64(bs.ReleasedBytes) - int64(b.BufferedBytes())
	})
	reg.RegisterFunc(metrics.MetricRelayUpgraded, func() int64 { return int64(b.Stats.Upgraded) })
	reg.RegisterFunc(metrics.MetricRelayForwarded, func() int64 { return int64(b.Stats.Forwarded) })
	reg.RegisterFunc(metrics.MetricRelayRepointed, func() int64 { return int64(b.Stats.Repointed) })
	reg.RegisterFunc(metrics.MetricRelayDroppedDown, func() int64 { return int64(b.Stats.DroppedDown) })
	dmtp.RegisterFlowMetrics(reg, b.FlowStats)
	for i := 0; i < b.eng.NumShards(); i++ {
		dmtp.RegisterShardOccupancy(reg, i, b.eng.At(i).BufferedBytes)
	}
	b.reshapeC = reg.Counter(fmt.Sprintf("%s%d", metrics.MetricRelayReshapePrefix, b.cfg.Upgrade.ConfigID))
	if b.jset != nil {
		b.jset.RegisterMetrics(reg)
	}
	dmtp.RegisterPoolMetrics(reg)
}

// Attach implements netsim.Handler.
func (b *BufferNode) Attach(n *netsim.Node) { b.node = n }

// Crash models the DTN process dying: from now until Restart every
// arriving frame — data, NAKs, ACKs, transit — is discarded, and the
// retransmission buffer is lost. Without a journal, sequence counters
// survive in memory but buffered payloads do not, so post-Restart NAKs
// for pre-crash packets meet a cold buffer. With JournalDir set the
// write-ahead log is flushed here (the OS had the writes; the process
// lost its memory) and Restart replays it. The flow table dies with the
// process either way: flows re-register (and re-resolve their downstream
// route) on their first post-Restart packet, so no stale forward address
// survives a crash.
func (b *BufferNode) Crash() {
	if b.jset != nil {
		b.jset.Flush()
	}
	b.eng.Crash()
	clear(b.flows)
	b.flowStats.Active = 0
}

// Restart brings a crashed node back into service. Without a journal
// the buffer is cold; with one, the log is replayed first — stash
// entries and sequence floors restored shard by shard — so NAK service
// resumes warm and the crash costs zero messages.
func (b *BufferNode) Restart() {
	if b.jset != nil {
		recs, err := b.jset.Replay()
		if err != nil {
			panic(fmt.Sprintf("core: journal replay on restart: %v", err))
		}
		for i, rec := range recs {
			b.restoreShard(i, rec)
		}
	}
	b.eng.Restart()
}

// IsDown reports whether the node is crashed.
func (b *BufferNode) IsDown() bool { return b.eng.Down() }

// HandleFrame implements netsim.Handler.
func (b *BufferNode) HandleFrame(ingress *netsim.Port, f *netsim.Frame) {
	if b.eng.Down() {
		b.Stats.DroppedDown++
		return
	}
	b.sweepFlows()
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil {
		return
	}
	if v.IsControl() {
		b.handleControl(ingress, f, v)
		return
	}
	if f.Dst != b.node.Addr && !f.Dst.IsZero() {
		// Transit data traffic: optionally adopt it (stash + repoint),
		// then route onward.
		if b.cfg.StashTransit {
			b.adoptTransit(v)
		}
		b.forwardRaw(f)
		return
	}
	if v.ConfigID() != b.cfg.UpgradeFrom {
		// Already upgraded or an unknown mode: pass through downstream
		// along the packet's registered flow.
		fl := b.flowFor(f.Src, v.Experiment())
		if fl == nil {
			return
		}
		b.send(fl.port, fl.dst, f.Data)
		b.Stats.Forwarded++
		return
	}
	b.upgradeAndForward(f.Src, v)
}

func (b *BufferNode) upgradeAndForward(src wire.Addr, v wire.View) {
	// Register the flow before spending a sequence number, so a rejected
	// flow (table full, resolver refusal) consumes no sequencing state.
	fl := b.flowFor(src, v.Experiment())
	if fl == nil {
		return
	}
	// FeatTraced rides along: an upgrade must not strip an in-band trace,
	// and the reshape itself is recorded as a hop stamp below.
	want := b.cfg.Upgrade.Features | v.Features()&wire.FeatTraced
	up, err := v.Reshape(b.cfg.Upgrade.ConfigID, want)
	if err != nil {
		return
	}
	if up.TraceSampled() {
		_ = up.AppendHopStamp(wire.TraceReshapeHop(b.cfg.Upgrade.ConfigID), int64(b.nw.Now()))
	}
	feats := up.Features()
	exp := up.Experiment()
	var seq uint64
	if feats.Has(wire.FeatSequenced) {
		seq = b.eng.NextSeq(exp)
	}
	dmtp.StampUpgrade(up, seq, int64(b.nw.Now()), dmtp.Upgrade{
		Self:             b.node.Addr,
		MaxAge:           b.cfg.MaxAge,
		DeadlineBudget:   b.cfg.DeadlineBudget,
		DeadlineNotify:   b.cfg.DeadlineNotify,
		BackPressureSink: b.cfg.BackPressureSink,
	})
	if feats.Has(wire.FeatEncrypted) && b.cfg.Cipher != nil {
		nonce := uint32(seq)
		off, _ := feats.ExtOffset(wire.FeatEncrypted)
		ext := up[wire.CoreHeaderLen+off:]
		ext[0], ext[1], ext[2], ext[3] = byte(b.cfg.KeyEpoch>>24), byte(b.cfg.KeyEpoch>>16), byte(b.cfg.KeyEpoch>>8), byte(b.cfg.KeyEpoch)
		ext[4], ext[5], ext[6], ext[7] = byte(nonce>>24), byte(nonce>>16), byte(nonce>>8), byte(nonce)
		b.cfg.Cipher.Seal(b.cfg.KeyEpoch, nonce, up.Payload())
	}
	b.Stats.Upgraded++
	if b.reshapeC != nil {
		b.reshapeC.Inc()
	}
	b.cfg.Recorder.RecordAt(int64(b.nw.Now()), metrics.EvReshape,
		uint64(exp), seq, uint64(b.cfg.Upgrade.ConfigID))
	if feats.Has(wire.FeatSequenced) {
		// Stash an independent copy: downstream elements mutate headers
		// in flight, and the buffer must retransmit the packet as it
		// left this node.
		b.eng.Stash(exp, seq, []byte(up.Clone()))
	}
	b.send(fl.port, fl.dst, up)
	b.Stats.Forwarded++
}

// adoptTransit buffers a sequenced transit packet and rewrites its
// retransmission pointer to this node, so downstream NAKs travel a shorter
// round trip. Retransmissions served by an upstream buffer pass through
// here again and are simply re-adopted, which is harmless (same bytes,
// same key).
func (b *BufferNode) adoptTransit(v wire.View) {
	feats := v.Features()
	if !feats.Has(wire.FeatSequenced) || !feats.Has(wire.FeatReliable) {
		return
	}
	seq, err := v.Seq()
	if err != nil || seq == 0 {
		return
	}
	if err := v.SetRetransmitBuffer(b.node.Addr); err != nil {
		return
	}
	b.eng.Stash(v.Experiment(), seq, []byte(v.Clone()))
	b.Stats.Repointed++
}

func (b *BufferNode) handleControl(ingress *netsim.Port, f *netsim.Frame, v wire.View) {
	if f.Dst != b.node.Addr {
		b.forwardRaw(f)
		return
	}
	switch v.ConfigID() {
	case wire.ConfigNAK:
		nak, err := wire.DecodeNAK(f.Data)
		if err != nil {
			return
		}
		b.eng.ServeNAK(nak)
	case wire.ConfigAck:
		ack, err := wire.DecodeAck(f.Data)
		if err != nil {
			return
		}
		b.eng.Trim(ack.Experiment, ack.CumulativeSeq)
	}
}

func (b *BufferNode) send(port int, dst wire.Addr, data []byte) {
	b.node.Port(port).Send(&netsim.Frame{
		Src:  b.node.Addr,
		Dst:  dst,
		Data: data,
		Born: b.nw.Now(),
	})
}

// forwardRaw routes a transit frame by destination.
func (b *BufferNode) forwardRaw(f *netsim.Frame) {
	port := b.cfg.ForwardPort
	if p, ok := b.cfg.Routes[f.Dst]; ok {
		port = p
	}
	b.node.Port(port).Send(f)
}
