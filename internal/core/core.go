// Package core implements the paper's primary contribution: the DMTP
// multi-modal transport endpoints and the machinery that plans and applies
// mode changes along a DAQ stream's path.
//
// The pieces map onto Fig. 3/Fig. 4 of the paper:
//
//   - Sender is the instrument-side source (① in Fig. 3): it emits DAQ
//     messages in mode 0 — bare experiment identification, no buffering for
//     retransmission, exactly as at the originating sensor.
//   - BufferNode is the first-line DTN (② / "DTN 1" in Fig. 4): it upgrades
//     the stream's mode for the WAN crossing (sequence numbers, the
//     retransmission-buffer pointer naming itself, age budget, deadline,
//     origin timestamp), buffers sequenced packets, and serves NAKs.
//   - Receiver is the downstream DTN (④ / "DTN 2"): it detects loss from
//     sequence gaps, requests retransmission from the nearest buffer named
//     in the header (not from the source — the paper's generalised
//     hop-by-hop X.25-style recovery), performs the destination timeliness
//     check, and delivers discrete messages to the application.
//   - Registry and ResourceMap capture the mode table and the paper's
//     "map of in-network programmable resources" (§6), from which Planner
//     derives the per-element mode-change rules installed into
//     internal/p4sim switches.
//
// Endpoints run on the internal/netsim substrate; the same wire protocol
// also runs over real UDP sockets in internal/live.
package core

import (
	"fmt"

	"repro/internal/wire"
)

// Mode is a named transport mode: a config ID and the feature set its
// configuration bits must carry (paper §5.2: "The combination of fields 1
// and 2 indicate the transport's mode").
type Mode struct {
	Name     string
	ConfigID uint8
	Features wire.Features
}

// The pilot study's three modes (paper §5.4):
var (
	// ModeBare is mode 0: unreliable transport from the sensor to DTN 1.
	// The header only identifies the experiment.
	ModeBare = Mode{Name: "bare", ConfigID: 0, Features: 0}

	// ModeWAN is the age-sensitive, recoverable-loss mode between DTN 1
	// and DTN 2: sequenced, reliable (buffer-backed), age-tracked against
	// a budget, deadline-checked, origin-timestamped, and able to carry
	// back-pressure.
	ModeWAN = Mode{
		Name:     "wan",
		ConfigID: 1,
		Features: wire.FeatSequenced | wire.FeatReliable | wire.FeatAgeTracked |
			wire.FeatTimely | wire.FeatTimestamped | wire.FeatBackPressure,
	}

	// ModeDeliver is the destination-side mode: the timeliness check
	// happens at the receiver; the retransmission pointer is dropped once
	// the stream leaves the recoverable segment.
	ModeDeliver = Mode{
		Name:     "deliver",
		ConfigID: 2,
		Features: wire.FeatSequenced | wire.FeatAgeTracked | wire.FeatTimely | wire.FeatTimestamped,
	}

	// ModeAlert is the in-network duplication mode used for multi-domain
	// alerts (Req 10): timestamped, deadline-checked, duplicated toward a
	// distribution group.
	ModeAlert = Mode{
		Name:     "alert",
		ConfigID: 3,
		Features: wire.FeatTimely | wire.FeatTimestamped | wire.FeatDuplicate,
	}
)

// Registry maps config IDs to modes so endpoints and elements can validate
// that a packet's configuration bits match its declared mode.
type Registry struct {
	byID map[uint8]Mode
}

// NewRegistry builds a registry over the given modes.
func NewRegistry(modes ...Mode) (*Registry, error) {
	r := &Registry{byID: make(map[uint8]Mode, len(modes))}
	for _, m := range modes {
		if m.ConfigID >= wire.ControlBase {
			return nil, fmt.Errorf("core: mode %q config ID %#02x collides with the control range", m.Name, m.ConfigID)
		}
		if !m.Features.Valid() {
			return nil, fmt.Errorf("core: mode %q has undefined feature bits", m.Name)
		}
		if dup, ok := r.byID[m.ConfigID]; ok {
			return nil, fmt.Errorf("core: config ID %d used by both %q and %q", m.ConfigID, dup.Name, m.Name)
		}
		r.byID[m.ConfigID] = m
	}
	return r, nil
}

// PilotRegistry returns the registry of the pilot study's modes.
func PilotRegistry() *Registry {
	r, err := NewRegistry(ModeBare, ModeWAN, ModeDeliver, ModeAlert)
	if err != nil {
		panic(err) // static definitions; cannot fail
	}
	return r
}

// Lookup returns the mode registered under id.
func (r *Registry) Lookup(id uint8) (Mode, bool) {
	m, ok := r.byID[id]
	return m, ok
}

// Validate checks that a data packet's configuration bits exactly match the
// mode its config ID names. Control packets validate trivially.
func (r *Registry) Validate(v wire.View) error {
	if _, err := v.Check(); err != nil {
		return err
	}
	if v.IsControl() {
		return nil
	}
	m, ok := r.byID[v.ConfigID()]
	if !ok {
		return fmt.Errorf("core: unknown mode %d", v.ConfigID())
	}
	if v.Features() != m.Features {
		return fmt.Errorf("core: mode %q expects features %v, packet carries %v",
			m.Name, m.Features, v.Features())
	}
	return nil
}
