package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func TestPilotRegistryValidates(t *testing.T) {
	r := PilotRegistry()
	for _, m := range []Mode{ModeBare, ModeWAN, ModeDeliver, ModeAlert} {
		got, ok := r.Lookup(m.ConfigID)
		if !ok || got.Name != m.Name {
			t.Fatalf("lookup %d: %+v %v", m.ConfigID, got, ok)
		}
		h := wire.Header{ConfigID: m.ConfigID, Features: m.Features}
		enc, err := h.AppendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(wire.View(enc)); err != nil {
			t.Fatalf("mode %q: %v", m.Name, err)
		}
	}
	// Feature bits that disagree with the declared mode must fail.
	h := wire.Header{ConfigID: ModeWAN.ConfigID, Features: wire.FeatSequenced}
	enc, _ := h.AppendTo(nil)
	if err := r.Validate(wire.View(enc)); err == nil {
		t.Fatal("mismatched features accepted")
	}
	// Unknown mode must fail.
	h2 := wire.Header{ConfigID: 0x77}
	enc2, _ := h2.AppendTo(nil)
	if err := r.Validate(wire.View(enc2)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	// Control packets validate trivially.
	h3 := wire.Header{ConfigID: wire.ConfigNAK}
	enc3, _ := h3.AppendTo(nil)
	if err := r.Validate(wire.View(enc3)); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRejectsBadModes(t *testing.T) {
	if _, err := NewRegistry(Mode{Name: "ctl", ConfigID: wire.ConfigNAK}); err == nil {
		t.Fatal("control-range config ID accepted")
	}
	if _, err := NewRegistry(Mode{Name: "bad", ConfigID: 1, Features: 1 << 23}); err == nil {
		t.Fatal("undefined features accepted")
	}
	if _, err := NewRegistry(Mode{Name: "a", ConfigID: 1}, Mode{Name: "b", ConfigID: 1}); err == nil {
		t.Fatal("duplicate config ID accepted")
	}
}

func TestXORKeystreamRoundTripQuick(t *testing.T) {
	c := NewXORKeystream(0xDEADBEEFCAFEF00D)
	f := func(nonce uint32, payload []byte) bool {
		orig := append([]byte(nil), payload...)
		c.Seal(0, nonce, payload)
		if len(payload) > 8 && bytes.Equal(orig, payload) {
			return false // keystream must actually transform
		}
		c.Open(0, nonce, payload)
		return bytes.Equal(orig, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXORKeystreamNonceMatters(t *testing.T) {
	c := NewXORKeystream(1)
	a := []byte("same plaintext bytes")
	b := append([]byte(nil), a...)
	c.Seal(0, 1, a)
	c.Seal(0, 2, b)
	if bytes.Equal(a, b) {
		t.Fatal("different nonces produced identical ciphertext")
	}
}

func pilotMap() *ResourceMap {
	return &ResourceMap{
		Segments: []Segment{
			{Name: "daq", RTT: 100 * time.Microsecond, RateBps: 100e9},
			{Name: "wan", RTT: 30 * time.Millisecond, RateBps: 100e9, LossProb: 1e-5, Shared: true},
			{Name: "campus", RTT: time.Millisecond, RateBps: 10e9, Shared: true},
		},
		Resources: []Resource{
			{Name: "dtn1", Addr: wire.AddrFrom(10, 0, 1, 1, 7000), Kind: KindBuffer, Segment: 0, CapacityBytes: 1 << 30},
			{Name: "tofino", Addr: wire.AddrFrom(10, 0, 2, 1, 0), Kind: KindModeChanger, Segment: 1},
		},
	}
}

func TestResourceMapValidateAndLookup(t *testing.T) {
	m := pilotMap()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	buf, ok := m.NearestBuffer(2)
	if !ok || buf.Name != "dtn1" {
		t.Fatalf("nearest buffer %+v %v", buf, ok)
	}
	if _, ok := m.NearestBuffer(-1); ok {
		t.Fatal("phantom buffer upstream of the path")
	}
	if rs := m.ResourcesIn(1); len(rs) != 1 || rs[0].Name != "tofino" {
		t.Fatalf("resources in segment 1: %+v", rs)
	}
	bad := &ResourceMap{Segments: []Segment{{Name: "x"}}, Resources: []Resource{{Name: "r", Kind: KindBuffer, Segment: 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if err := (&ResourceMap{}).Validate(); err == nil {
		t.Fatal("empty map accepted")
	}
}

func TestPlanReproducesPilotModes(t *testing.T) {
	plans, err := Plan(pilotMap(), PlanPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("%d plans", len(plans))
	}
	// Segment 0 (DAQ net, no upstream buffer): bare / mode 0.
	if plans[0].Mode.ConfigID != ModeBare.ConfigID {
		t.Fatalf("daq segment mode %q", plans[0].Mode.Name)
	}
	// Segment 1 (WAN, buffer at DTN1 upstream): recoverable WAN mode.
	if plans[1].Mode.ConfigID != ModeWAN.ConfigID {
		t.Fatalf("wan segment mode %q", plans[1].Mode.Name)
	}
	if plans[1].Buffer != wire.AddrFrom(10, 0, 1, 1, 7000) {
		t.Fatalf("wan buffer %v", plans[1].Buffer)
	}
	if plans[1].MaxAge <= 0 || plans[1].DeadlineBudget <= 0 {
		t.Fatal("wan budgets unset")
	}
	// Final segment: delivery mode (timeliness check at destination).
	if plans[2].Mode.ConfigID != ModeDeliver.ConfigID {
		t.Fatalf("final segment mode %q", plans[2].Mode.Name)
	}
}

func TestPlanWithoutBuffersStaysBare(t *testing.T) {
	m := &ResourceMap{Segments: []Segment{{Name: "a"}, {Name: "b"}}}
	plans, err := Plan(m, PlanPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Mode.ConfigID != ModeBare.ConfigID {
			t.Fatalf("segment %q mode %q", p.Segment.Name, p.Mode.Name)
		}
	}
}

func TestResourceKindStrings(t *testing.T) {
	for _, k := range []ResourceKind{KindBuffer, KindModeChanger, KindDuplicator, KindTelemetry, ResourceKind(77)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}
