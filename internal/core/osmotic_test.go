package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func TestOsmoticSensorsJoinTheDMTPWorld(t *testing.T) {
	nw := netsim.New(1)
	gwAddr := wire.AddrFrom(10, 9, 0, 1, 1)
	dtnAddr := wire.AddrFrom(10, 9, 1, 1, 1)
	dstAddr := wire.AddrFrom(10, 9, 2, 1, 1)

	perSlice := map[uint8]int{}
	var sampleExp wire.ExperimentID
	var sampleSeq uint64
	facility := NewReceiver(nw, "facility", dstAddr, ReceiverConfig{
		OnMessage: func(m Message) {
			perSlice[m.Experiment.Slice()]++
			sampleExp, sampleSeq = m.Experiment, m.Seq
		},
	})
	dtn := NewBufferNode(nw, "dtn", dtnAddr, BufferConfig{
		UpgradeFrom: ModeBare.ConfigID,
		Upgrade:     ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      time.Second,
		Routes:      map[wire.Addr]int{gwAddr: 0},
	})
	gw := NewOsmoticGateway(nw, "gateway", gwAddr, dtnAddr, 0x05E)

	// Two dispersed sensors over cell-backhaul-ish TCP (40 ms, 10 Mbps,
	// some loss), one per instrument slice.
	var sensors []*baseline.TCPSender
	for i := 0; i < 2; i++ {
		addr := wire.AddrFrom(10, 9, 3, byte(i+1), 1)
		snd := baseline.NewTCPSender(nw, fmt.Sprintf("sensor%d", i), addr, gwAddr, uint16(i+1), baseline.TCPConfig{MSS: 1400})
		nw.Connect(snd.Node(), gw.Node(), netsim.LinkConfig{
			RateBps: netsim.Mbps(10), Delay: 40 * time.Millisecond, LossProb: 0.03, QueueBytes: 1 << 20})
		gw.AddSensor(addr, uint16(i+1), uint8(i+1))
		sensors = append(sensors, snd)
	}
	// Uplink to the DAQ world, wired last; then the DTN's WAN leg.
	nw.Connect(gw.Node(), dtn.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Millisecond})
	gw.SetUplink(len(gw.Node().Ports) - 1)
	nw.Connect(dtn.Node(), facility.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 10 * time.Millisecond})

	const perSensor = 60
	for i, snd := range sensors {
		for j := 0; j < perSensor; j++ {
			reading := make([]byte, 1024)
			copy(reading, fmt.Sprintf("sensor%d-reading%d", i, j))
			snd.Send(reading)
		}
		snd.Close()
	}
	nw.Loop().Run()

	if gw.Ingested != 2*perSensor || gw.Emitted != 2*perSensor {
		t.Fatalf("gateway ingested %d emitted %d", gw.Ingested, gw.Emitted)
	}
	if perSlice[1] != perSensor || perSlice[2] != perSensor {
		t.Fatalf("per-slice deliveries %v", perSlice)
	}
	// The readings went through the full DMTP treatment: upgraded at the
	// DTN, sequenced, attributed to the right experiment.
	if dtn.Stats.Upgraded != 2*perSensor {
		t.Fatalf("dtn upgraded %d", dtn.Stats.Upgraded)
	}
	if sampleExp.Experiment() != 0x05E || sampleSeq == 0 {
		t.Fatalf("last message: %v seq %d", sampleExp, sampleSeq)
	}
	// The lossy backhaul was TCP's problem, not DMTP's: sensors
	// retransmitted, the gateway saw complete streams.
	if sensors[0].Stats.Retransmits+sensors[1].Stats.Retransmits == 0 {
		t.Fatal("no backhaul retransmissions despite loss")
	}
}
