package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/sim"
)

// TestEndToEndJournaledCrashZeroLoss is the simulator-substrate durable
// pilot: the Fig. 4 path with 5% WAN loss, a DTN1 crash/restart in the
// middle of the stream, and a write-ahead journal under the stash. The
// cold-crash variant of this scenario writes off every pre-crash packet
// still awaiting recovery; with the journal, Restart replays the stash
// and the tally must be exact — zero lost, all 200 delivered.
func TestEndToEndJournaledCrashZeroLoss(t *testing.T) {
	jdir := t.TempDir()
	p := newPilotPath(t, 3, 0.05, ReceiverConfig{
		NAKDelay:    200 * time.Microsecond,
		NAKRetry:    2 * time.Millisecond,
		NAKRetryMax: 20 * time.Millisecond,
		MaxNAKs:     50,
	}, func(cfg *BufferConfig) {
		cfg.JournalDir = jdir
	})
	defer p.dtn1.CloseJournal()

	src := daq.NewLArTPC(daq.DefaultLArTPC(0, 200, 7))
	p.sender.Stream(src)
	// Crash mid-stream: the stash still holds unacknowledged packets and
	// WAN loss guarantees some of them have recovery in flight.
	p.nw.Loop().At(sim.Time(5*time.Millisecond), func() {
		p.dtn1.Crash()
		p.dtn1.Restart()
	})
	p.nw.Loop().Run()

	st := p.receiver.Stats
	if st.Lost != 0 {
		t.Fatalf("journaled crash still lost packets: %+v", st)
	}
	if len(p.messages) != 200 {
		t.Fatalf("delivered %d/200", len(p.messages))
	}
	if st.Recovered == 0 {
		t.Fatalf("no recoveries under 5%% WAN loss: %+v", st)
	}
	if p.dtn1.Stats.BufferStats.Crashes != 1 {
		t.Fatalf("crash not recorded: %+v", p.dtn1.Stats.BufferStats)
	}
	js := p.dtn1.JournalStats()
	if js.Replayed == 0 {
		t.Fatalf("restart replayed nothing: %+v", js)
	}
	// The replay balance the campaign oracle enforces, checked here too:
	// every recovery must account for exactly the appends minus removals.
	for i, rec := range p.dtn1.JournalRecoveries() {
		if rec.Appended-rec.Tombstoned != rec.Replayed {
			t.Fatalf("shard %d replay balance broken: appended %d − tombstoned %d != replayed %d",
				i, rec.Appended, rec.Tombstoned, rec.Replayed)
		}
	}
}

// TestEndToEndJournalDisabledMatchesSeed pins the nil-journal contract:
// with no JournalDir the durable path is entirely absent — no journal
// state, no recoveries, and Crash/Restart keep the pre-journal cold-
// buffer semantics (pre-crash losses written off, stream continues).
func TestEndToEndJournalDisabledMatchesSeed(t *testing.T) {
	p := newPilotPath(t, 3, 0.05, ReceiverConfig{
		NAKDelay:    200 * time.Microsecond,
		NAKRetry:    2 * time.Millisecond,
		NAKRetryMax: 20 * time.Millisecond,
		MaxNAKs:     10,
	}, nil)
	src := daq.NewLArTPC(daq.DefaultLArTPC(0, 200, 7))
	p.sender.Stream(src)
	p.nw.Loop().At(sim.Time(5*time.Millisecond), func() {
		p.dtn1.Crash()
		p.dtn1.Restart()
	})
	p.nw.Loop().Run()

	if recs := p.dtn1.JournalRecoveries(); recs != nil {
		t.Fatalf("nil-journal node reports recoveries: %v", recs)
	}
	if js := p.dtn1.JournalStats(); js.Appends != 0 || js.Replayed != 0 {
		t.Fatalf("nil-journal node counted journal traffic: %+v", js)
	}
	if err := p.dtn1.CloseJournal(); err != nil {
		t.Fatalf("CloseJournal on nil journal: %v", err)
	}
	// Delivery still completes around whatever the cold crash stranded.
	if got := len(p.messages) + int(p.receiver.Stats.Lost); got != 200 {
		t.Fatalf("delivered %d + lost %d != 200", len(p.messages), p.receiver.Stats.Lost)
	}
}
