package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// senderRig wires sender ── link ── sink and lets tests inject control
// packets back at the sender.
type senderRig struct {
	nw       *netsim.Network
	snd      *Sender
	sink     *netsim.Host
	sinkN    *netsim.Node
	arrivals []time.Duration
}

func newSenderRig(t *testing.T, cfg SenderConfig, rate float64) *senderRig {
	t.Helper()
	r := &senderRig{nw: netsim.New(1), sink: &netsim.Host{}}
	sndAddr := wire.AddrFrom(10, 0, 0, 1, 1)
	dstAddr := wire.AddrFrom(10, 0, 0, 2, 1)
	cfg.Dst = dstAddr
	r.snd = NewSender(r.nw, "snd", sndAddr, cfg)
	r.sinkN = r.nw.AddNode("sink", dstAddr, r.sink)
	r.nw.Connect(r.snd.Node(), r.sinkN, netsim.LinkConfig{RateBps: rate, Delay: time.Microsecond, QueueBytes: 1 << 30})
	r.sink.Recv = func(f *netsim.Frame) {
		r.arrivals = append(r.arrivals, time.Duration(r.nw.Now()))
	}
	return r
}

func (r *senderRig) injectControl(t *testing.T, data []byte) {
	t.Helper()
	r.sinkN.SendTo(r.snd.Node().Addr, data)
}

func TestSenderPacingLimitsRate(t *testing.T) {
	// 100 messages of ~1 KB offered instantly, paced at 8 Mbps → the
	// drain should take ≈ 100 KB × 8 / 8 Mbps ≈ 100 ms.
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare, RateMbps: 8}, netsim.Gbps(10))
	rig.snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000 - daq.HeaderLen, Interval: time.Nanosecond, Count: 100, Seed: 1,
	}))
	rig.nw.Loop().Run()
	if !rig.snd.Done || rig.snd.Stats.Sent != 100 {
		t.Fatalf("sent %d done=%v", rig.snd.Stats.Sent, rig.snd.Done)
	}
	total := rig.arrivals[len(rig.arrivals)-1]
	if total < 60*time.Millisecond || total > 200*time.Millisecond {
		t.Fatalf("paced drain took %v, want ≈100ms", total)
	}
	if rig.snd.Stats.Queued == 0 {
		t.Fatal("pacing never queued")
	}
}

func TestSenderUnpacedFollowsSchedule(t *testing.T) {
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare}, netsim.Gbps(10))
	rig.snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 100, Interval: time.Millisecond, Count: 10, Seed: 1,
	}))
	rig.nw.Loop().Run()
	if len(rig.arrivals) != 10 {
		t.Fatalf("arrivals %d", len(rig.arrivals))
	}
	for i := 1; i < len(rig.arrivals); i++ {
		gap := rig.arrivals[i] - rig.arrivals[i-1]
		if gap < 900*time.Microsecond || gap > 1100*time.Microsecond {
			t.Fatalf("gap %d: %v", i, gap)
		}
	}
}

func TestSenderBackPressureSlowsAndRecovers(t *testing.T) {
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare, RecoverInterval: 5 * time.Millisecond}, netsim.Gbps(10))
	// Offer 200 messages over 20 ms; inject a back-pressure signal early.
	rig.snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000, Interval: 100 * time.Microsecond, Count: 200, Seed: 1,
	}))
	sig := wire.BackPressureSignal{Experiment: wire.NewExperimentID(1, 0), Level: 200, RateHintMbps: 10, Reporter: wire.AddrFrom(9, 9, 9, 9, 9)}
	data, err := sig.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.nw.Loop().After(time.Millisecond, func() { rig.injectControl(t, data) })
	rig.nw.Loop().Run()

	if rig.snd.Stats.BackPressure != 1 {
		t.Fatalf("signals %d", rig.snd.Stats.BackPressure)
	}
	if rig.snd.Stats.Queued == 0 {
		t.Fatal("back-pressure never queued messages")
	}
	if !rig.snd.Done || len(rig.arrivals) != 200 {
		t.Fatalf("incomplete after recovery: %d arrivals done=%v", len(rig.arrivals), rig.snd.Done)
	}
	// The run must take longer than the unconstrained 20 ms because of
	// the throttled window, but recovery must unthrottle it eventually
	// (10 Mbps for 200×1 KB alone would be 160 ms).
	total := rig.arrivals[len(rig.arrivals)-1]
	if total < 21*time.Millisecond {
		t.Fatalf("throttling invisible: %v", total)
	}
	if total > 160*time.Millisecond {
		t.Fatalf("recovery never happened: %v", total)
	}
}

func TestSenderPauseOnLevel255(t *testing.T) {
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare, RecoverInterval: 10 * time.Millisecond}, netsim.Gbps(10))
	sig := wire.BackPressureSignal{Level: 255, Reporter: wire.AddrFrom(9, 9, 9, 9, 9)}
	data, err := sig.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.nw.Loop().After(500*time.Microsecond, func() { rig.injectControl(t, data) })
	rig.snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 100, Interval: 100 * time.Microsecond, Count: 50, Seed: 1,
	}))
	rig.nw.Loop().Run()
	if !rig.snd.Done || len(rig.arrivals) != 50 {
		t.Fatalf("pause never released: %d arrivals", len(rig.arrivals))
	}
	// Messages offered during the pause arrive after the recovery step.
	var lateArrivals int
	for _, at := range rig.arrivals {
		if at > 10*time.Millisecond {
			lateArrivals++
		}
	}
	if lateArrivals == 0 {
		t.Fatal("no arrivals deferred past the pause window")
	}
}

func TestSenderCountsDeadlineMisses(t *testing.T) {
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare}, netsim.Gbps(10))
	note := wire.DeadlineExceeded{Experiment: wire.NewExperimentID(1, 0), Seq: 3, Reporter: wire.AddrFrom(9, 9, 9, 9, 9)}
	data, err := note.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.injectControl(t, data)
	rig.nw.Loop().Run()
	if rig.snd.Stats.DeadlineMiss != 1 {
		t.Fatalf("deadline misses %d", rig.snd.Stats.DeadlineMiss)
	}
}

func TestSenderIgnoresDataAndGarbage(t *testing.T) {
	rig := newSenderRig(t, SenderConfig{Experiment: 1, Mode: ModeBare}, netsim.Gbps(10))
	h := wire.Header{ConfigID: 1}
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.injectControl(t, data)         // data packet at a sensor
	rig.injectControl(t, []byte{1, 2}) // garbage
	rig.nw.Loop().Run()
	if rig.snd.Stats.BackPressure != 0 || rig.snd.Stats.DeadlineMiss != 0 {
		t.Fatal("sensor acted on non-control input")
	}
}

func TestSenderEmitPopulatesModeExtensions(t *testing.T) {
	mode := Mode{Name: "rich", ConfigID: 6,
		Features: wire.FeatTimestamped | wire.FeatDuplicate | wire.FeatBackPressure | wire.FeatTimely}
	rig := newSenderRig(t, SenderConfig{
		Experiment:     7,
		Mode:           mode,
		DupGroup:       9,
		DupScope:       2,
		DeadlineBudget: 5 * time.Millisecond,
		DeadlineNotify: wire.AddrFrom(9, 9, 9, 9, 9),
	}, netsim.Gbps(10))
	var got wire.View
	rig.sink.Recv = func(f *netsim.Frame) { got = wire.View(f.Data) }
	rig.snd.Emit([]byte("m"), 3)
	rig.nw.Loop().Run()

	if got == nil {
		t.Fatal("nothing delivered")
	}
	if got.Experiment() != wire.NewExperimentID(7, 3) {
		t.Fatalf("experiment %v", got.Experiment())
	}
	if d, _ := got.Dup(); d.Group != 9 || d.Scope != 2 {
		t.Fatalf("dup %+v", d)
	}
	if bp, _ := got.BackPressure(); bp.Sink != rig.snd.Node().Addr {
		t.Fatalf("bp sink %v", bp.Sink)
	}
	deadline, notify, err := got.Deadline()
	if err != nil || deadline != uint64(5*time.Millisecond) || notify != wire.AddrFrom(9, 9, 9, 9, 9) {
		t.Fatalf("deadline %d %v %v", deadline, notify, err)
	}
	if ts, _ := got.OriginTimestamp(); ts != 0 {
		// Emitted at t=0; origin nanos is 0 by construction here.
		t.Fatalf("origin %d", ts)
	}
	if rig.snd.Meter().Frames != 1 {
		t.Fatal("meter not updated")
	}
}
