package core

import "encoding/binary"

// Cipher encrypts and decrypts DAQ payloads (Req 5). The paper keeps
// cryptography outside the protocol — "we retain the current practice of
// encrypting the payload using existing third-party software or hardware" —
// so the transport only carries a key epoch and per-packet nonce in the
// FeatEncrypted extension and delegates the transform to this interface.
// Headers are never encrypted: they must stay processable in-network.
type Cipher interface {
	// Seal encrypts payload in place using the epoch's key and the nonce.
	Seal(keyEpoch uint32, nonce uint32, payload []byte)
	// Open decrypts payload in place. Open(Seal(x)) == x.
	Open(keyEpoch uint32, nonce uint32, payload []byte)
}

// XORKeystream is the stand-in cipher for this reproduction: a keyed
// xorshift keystream applied to the payload. It is NOT cryptographically
// secure — it exists so the encrypted-mode code path (nonce management,
// in-network header processability, overhead accounting) is exercised
// end to end; a deployment would plug in AES-GCM hardware here.
type XORKeystream struct {
	// Keys maps key epoch → 64-bit key.
	Keys map[uint32]uint64
}

// NewXORKeystream returns a cipher with a single epoch-0 key.
func NewXORKeystream(key uint64) *XORKeystream {
	return &XORKeystream{Keys: map[uint32]uint64{0: key}}
}

func (c *XORKeystream) stream(keyEpoch, nonce uint32, payload []byte) {
	state := c.Keys[keyEpoch] ^ (uint64(nonce)<<32 | uint64(nonce) | 0x9E3779B97F4A7C15)
	var block [8]byte
	for i := 0; i < len(payload); i += 8 {
		// xorshift64
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		binary.LittleEndian.PutUint64(block[:], state)
		for j := 0; j < 8 && i+j < len(payload); j++ {
			payload[i+j] ^= block[j]
		}
	}
}

// Seal implements Cipher.
func (c *XORKeystream) Seal(keyEpoch, nonce uint32, payload []byte) {
	c.stream(keyEpoch, nonce, payload)
}

// Open implements Cipher.
func (c *XORKeystream) Open(keyEpoch, nonce uint32, payload []byte) {
	c.stream(keyEpoch, nonce, payload)
}
