package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// bufferRig wires upstream ── buffer ── downstream.
type bufferRig struct {
	nw                        *netsim.Network
	buf                       *BufferNode
	up, down                  *netsim.Host
	upN, downN                *netsim.Node
	upAddr, bufAddr, downAddr wire.Addr
}

func newBufferRig(t *testing.T, mutate func(*BufferConfig)) *bufferRig {
	t.Helper()
	r := &bufferRig{
		nw:       netsim.New(1),
		up:       &netsim.Host{},
		down:     &netsim.Host{},
		upAddr:   wire.AddrFrom(10, 0, 0, 1, 1),
		bufAddr:  wire.AddrFrom(10, 0, 1, 1, 1),
		downAddr: wire.AddrFrom(10, 0, 2, 1, 1),
	}
	cfg := BufferConfig{
		UpgradeFrom: ModeBare.ConfigID,
		Upgrade:     ModeWAN,
		Forward:     r.downAddr,
		ForwardPort: 1,
		MaxAge:      100 * time.Millisecond,
		Routes:      map[wire.Addr]int{r.upAddr: 0},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r.buf = NewBufferNode(r.nw, "buf", r.bufAddr, cfg)
	r.upN = r.nw.AddNode("up", r.upAddr, r.up)
	r.downN = r.nw.AddNode("down", r.downAddr, r.down)
	r.nw.Connect(r.buf.Node(), r.upN, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Microsecond})
	r.nw.Connect(r.buf.Node(), r.downN, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: time.Microsecond})
	return r
}

func (r *bufferRig) sendBare(t *testing.T, payload string) {
	t.Helper()
	h := wire.Header{ConfigID: ModeBare.ConfigID, Experiment: wire.NewExperimentID(4, 0)}
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.upN.SendTo(r.bufAddr, append(data, payload...))
}

func TestBufferEvictsOldestWhenFull(t *testing.T) {
	rig := newBufferRig(t, func(c *BufferConfig) { c.CapacityBytes = 3000 })
	for i := 0; i < 5; i++ {
		rig.sendBare(t, string(make([]byte, 1000)))
	}
	rig.nw.Loop().Run()
	if rig.buf.Stats.Evicted == 0 {
		t.Fatalf("no evictions: %+v", rig.buf.Stats)
	}
	if rig.buf.BufferedBytes() > 3000 {
		t.Fatalf("capacity exceeded: %d", rig.buf.BufferedBytes())
	}
	// NAK for an evicted packet is a miss; for a retained one, a hit.
	nakFor := func(seq uint64) {
		n := wire.NAK{Experiment: wire.NewExperimentID(4, 0), Requester: rig.downAddr,
			Ranges: []wire.SeqRange{{From: seq, To: seq}}}
		data, err := n.AppendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		rig.downN.SendTo(rig.bufAddr, data)
	}
	nakFor(1) // evicted
	nakFor(5) // retained
	rig.nw.Loop().Run()
	if rig.buf.Stats.Misses != 1 || rig.buf.Stats.Retransmits != 1 {
		t.Fatalf("misses=%d retransmits=%d", rig.buf.Stats.Misses, rig.buf.Stats.Retransmits)
	}
}

func TestBufferTrimOnAck(t *testing.T) {
	rig := newBufferRig(t, nil)
	for i := 0; i < 4; i++ {
		rig.sendBare(t, "pppp")
	}
	rig.nw.Loop().Run()
	before := rig.buf.BufferedBytes()
	ack := wire.Ack{Experiment: wire.NewExperimentID(4, 0), CumulativeSeq: 3, Acker: rig.downAddr}
	data, err := ack.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.downN.SendTo(rig.bufAddr, data)
	rig.nw.Loop().Run()
	if rig.buf.Stats.Trimmed != 3 {
		t.Fatalf("trimmed %d", rig.buf.Stats.Trimmed)
	}
	if rig.buf.BufferedBytes() >= before {
		t.Fatal("occupancy not reduced")
	}
}

func TestBufferStoresCopyNotAlias(t *testing.T) {
	// Downstream mutation of the forwarded packet must not corrupt the
	// buffered copy used for retransmission.
	rig := newBufferRig(t, nil)
	var forwarded wire.View
	rig.down.Recv = func(f *netsim.Frame) { forwarded = wire.View(f.Data) }
	rig.sendBare(t, "original")
	rig.nw.Loop().Run()
	if forwarded == nil {
		t.Fatal("nothing forwarded")
	}
	// Simulate an on-path element mutating the in-flight packet.
	if _, err := forwarded.AddAge(999); err != nil {
		t.Fatal(err)
	}
	// Retransmission must carry the original header state.
	var retransmitted wire.View
	rig.down.Recv = func(f *netsim.Frame) { retransmitted = wire.View(f.Data) }
	nak := wire.NAK{Experiment: wire.NewExperimentID(4, 0), Requester: rig.downAddr,
		Ranges: []wire.SeqRange{{From: 1, To: 1}}}
	data, err := nak.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.downN.SendTo(rig.bufAddr, data)
	rig.nw.Loop().Run()
	if retransmitted == nil {
		t.Fatal("no retransmission")
	}
	age, err := retransmitted.Age()
	if err != nil {
		t.Fatal(err)
	}
	if age.AgeMicros != 0 {
		t.Fatalf("buffered copy was aliased: age %d", age.AgeMicros)
	}
}

func TestBufferRoutesTransitControl(t *testing.T) {
	// A control packet addressed upstream (not to the buffer) must be
	// forwarded out the configured route, not consumed.
	rig := newBufferRig(t, nil)
	var atUp int
	rig.up.Recv = func(f *netsim.Frame) { atUp++ }
	sig := wire.BackPressureSignal{Level: 1, Reporter: wire.AddrFrom(9, 9, 9, 9, 9)}
	data, err := sig.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.downN.SendTo(rig.upAddr, data)
	rig.nw.Loop().Run()
	if atUp != 1 {
		t.Fatalf("transit control not routed upstream: %d", atUp)
	}
}

func TestBufferPassesThroughForeignModes(t *testing.T) {
	// Traffic already in another mode (not UpgradeFrom) addressed to the
	// buffer is forwarded downstream untouched.
	rig := newBufferRig(t, nil)
	var got wire.View
	rig.down.Recv = func(f *netsim.Frame) { got = wire.View(f.Data) }
	h := wire.Header{ConfigID: 9, Experiment: wire.NewExperimentID(4, 0)}
	data, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.upN.SendTo(rig.bufAddr, data)
	rig.nw.Loop().Run()
	if got == nil || got.ConfigID() != 9 {
		t.Fatalf("foreign mode mangled: %v", got)
	}
	if rig.buf.Stats.Upgraded != 0 {
		t.Fatal("foreign mode upgraded")
	}
}

func TestBufferPerExperimentSequences(t *testing.T) {
	rig := newBufferRig(t, nil)
	var seqs = map[wire.ExperimentID][]uint64{}
	rig.down.Recv = func(f *netsim.Frame) {
		v := wire.View(f.Data)
		if s, err := v.Seq(); err == nil {
			seqs[v.Experiment()] = append(seqs[v.Experiment()], s)
		}
	}
	send := func(exp wire.ExperimentID) {
		h := wire.Header{ConfigID: ModeBare.ConfigID, Experiment: exp}
		data, err := h.AppendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		rig.upN.SendTo(rig.bufAddr, data)
	}
	a, b := wire.NewExperimentID(1, 0), wire.NewExperimentID(1, 1) // two slices
	send(a)
	send(b)
	send(a)
	rig.nw.Loop().Run()
	if len(seqs[a]) != 2 || seqs[a][0] != 1 || seqs[a][1] != 2 {
		t.Fatalf("slice A seqs %v", seqs[a])
	}
	if len(seqs[b]) != 1 || seqs[b][0] != 1 {
		t.Fatalf("slice B seqs %v", seqs[b])
	}
}
