package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

// pilotPath wires the Fig. 4 topology:
//
//	sensor ──100G/10µs── DTN1 ──100G/1ms── switch ──lossy 100G/15ms── DTN2
//
// with the Tofino2 stand-in running age tracking, deadline marking and
// forwarding.
type pilotPath struct {
	nw       *netsim.Network
	sender   *Sender
	dtn1     *BufferNode
	sw       *p4sim.Switch
	receiver *Receiver

	sensorAddr, dtn1Addr, dtn2Addr wire.Addr
	messages                       []Message
}

func newPilotPath(t *testing.T, seed int64, wanLoss float64, rcfg ReceiverConfig, bcfg func(*BufferConfig)) *pilotPath {
	t.Helper()
	p := &pilotPath{
		nw:         netsim.New(seed),
		sensorAddr: wire.AddrFrom(10, 0, 0, 1, 4000),
		dtn1Addr:   wire.AddrFrom(10, 0, 1, 1, 7000),
		dtn2Addr:   wire.AddrFrom(10, 0, 2, 1, 7000),
	}
	rcfg.OnMessage = func(m Message) { p.messages = append(p.messages, m) }
	p.receiver = NewReceiver(p.nw, "dtn2", p.dtn2Addr, rcfg)

	cfg := BufferConfig{
		UpgradeFrom:      ModeBare.ConfigID,
		Upgrade:          ModeWAN,
		Forward:          p.dtn2Addr,
		ForwardPort:      1,
		MaxAge:           200 * time.Millisecond,
		DeadlineBudget:   500 * time.Millisecond,
		DeadlineNotify:   p.sensorAddr,
		BackPressureSink: p.sensorAddr,
		Routes:           map[wire.Addr]int{p.sensorAddr: 0},
	}
	if bcfg != nil {
		bcfg(&cfg)
	}
	p.dtn1 = NewBufferNode(p.nw, "dtn1", p.dtn1Addr, cfg)

	fwd := p4sim.NewForwarder().
		Route(p.dtn2Addr, 1).
		Route(p.dtn1Addr, 0).
		Route(p.sensorAddr, 0)
	p.sw = p4sim.NewSwitch(fwd, 400*time.Nanosecond,
		&p4sim.AgeTracker{PortDeltaMicros: map[int]uint32{p4sim.WildcardPort: 0}},
		&p4sim.DeadlineMarker{Reporter: wire.AddrFrom(10, 0, 2, 254, 0), SuppressWindow: 10 * time.Millisecond},
		fwd,
	)
	swNode := p.nw.AddNode("tofino2", wire.Addr{}, p.sw)

	p.sender = NewSender(p.nw, "sensor", p.sensorAddr, SenderConfig{
		Experiment: 42,
		Dst:        p.dtn1Addr,
		Mode:       ModeBare,
	})

	p.nw.Connect(p.sender.Node(), p.dtn1.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond})
	p.nw.Connect(p.dtn1.Node(), swNode, netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: time.Millisecond})
	p.nw.ConnectAsym(swNode, p.receiver.Node(),
		netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 15 * time.Millisecond, LossProb: wanLoss},
		netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 15 * time.Millisecond})
	return p
}

func TestEndToEndLosslessDelivery(t *testing.T) {
	p := newPilotPath(t, 1, 0, ReceiverConfig{}, nil)
	src := daq.NewLArTPC(daq.DefaultLArTPC(0, 200, 7))
	p.sender.Stream(src)
	p.nw.Loop().Run()

	if p.sender.Stats.Sent != 200 {
		t.Fatalf("sent %d", p.sender.Stats.Sent)
	}
	if len(p.messages) != 200 {
		t.Fatalf("delivered %d", len(p.messages))
	}
	st := p.receiver.Stats
	if st.Lost != 0 || st.Recovered != 0 || st.Duplicates != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Messages arrive in order on a lossless FIFO path, sequenced 1..200.
	for i, m := range p.messages {
		if m.Seq != uint64(i+1) {
			t.Fatalf("message %d has seq %d", i, m.Seq)
		}
		if m.Experiment.Experiment() != 42 {
			t.Fatalf("experiment %v", m.Experiment)
		}
		if m.Latency < 16*time.Millisecond || m.Latency > 30*time.Millisecond {
			t.Fatalf("latency %v out of expected band", m.Latency)
		}
		if m.Aged || m.Late || m.Recovered {
			t.Fatalf("unexpected flags on %d: %+v", i, m)
		}
	}
	// Payloads survive intact end to end.
	var h daq.Header
	if _, err := h.DecodeFromBytes(p.messages[0].Payload); err != nil {
		t.Fatalf("payload not a DAQ frame: %v", err)
	}
	if h.Detector != daq.DetLArTPC {
		t.Fatalf("detector %v", h.Detector)
	}
}

func TestEndToEndLossRecoveryFromDTN1(t *testing.T) {
	p := newPilotPath(t, 2, 0.05, ReceiverConfig{
		NAKDelay: 200 * time.Microsecond,
		NAKRetry: 40 * time.Millisecond, // > buffer RTT (~32 ms)
		MaxNAKs:  8,
	}, nil)
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 6000, Interval: 50 * time.Microsecond, Count: 1000, Seed: 5})
	p.sender.Stream(src)
	p.nw.Loop().Run()

	st := p.receiver.Stats
	if st.Recovered == 0 {
		t.Fatalf("no recoveries despite 5%% loss: %+v", st)
	}
	if st.Lost != 0 {
		t.Fatalf("permanent losses despite retries: %+v", st)
	}
	// All 1000 distinct messages eventually delivered.
	seen := make(map[uint64]bool)
	for _, m := range p.messages {
		seen[m.Seq] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("distinct messages %d", len(seen))
	}
	if p.dtn1.Stats.Retransmits == 0 || p.dtn1.Stats.NAKs == 0 {
		t.Fatalf("buffer stats %+v", p.dtn1.Stats)
	}
	// Recovery must come from DTN1 (RTT ≈ 32 ms), far faster than a
	// sensor-based retry could be if the source kept no buffer at all
	// (the paper's point: the sensor does not buffer).
	if p.receiver.RecoveryHist.Count() == 0 {
		t.Fatal("no recovery latency samples")
	}
	p50 := time.Duration(p.receiver.RecoveryHist.Quantile(0.5))
	if p50 > 120*time.Millisecond {
		t.Fatalf("median recovery %v too slow", p50)
	}
}

func TestEndToEndGivesUpAfterMaxNAKs(t *testing.T) {
	// Tiny buffer at DTN1: evictions guarantee some NAK misses, and the
	// receiver must eventually declare those packets lost and move on.
	p := newPilotPath(t, 3, 0.3, ReceiverConfig{
		NAKDelay: 100 * time.Microsecond,
		NAKRetry: 2 * time.Millisecond, // deliberately below buffer RTT
		MaxNAKs:  2,
	}, func(c *BufferConfig) { c.CapacityBytes = 20_000 })
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 6000, Interval: 20 * time.Microsecond, Count: 400, Seed: 5})
	p.sender.Stream(src)
	p.nw.Loop().Run()

	st := p.receiver.Stats
	if st.Lost == 0 {
		t.Fatalf("expected permanent losses: %+v", st)
	}
	if p.receiver.OutstandingGaps() != 0 {
		t.Fatalf("%d gaps still pending at quiescence", p.receiver.OutstandingGaps())
	}
	if p.dtn1.Stats.Evicted == 0 {
		t.Fatalf("tiny buffer never evicted: %+v", p.dtn1.Stats)
	}
}

func TestEndToEndAgedMarking(t *testing.T) {
	// Give packets an age budget far below the 16 ms path latency: the
	// switch's age tracker must mark every packet aged, and the receiver
	// must count them.
	p := newPilotPath(t, 4, 0, ReceiverConfig{}, func(c *BufferConfig) {
		c.MaxAge = 2 * time.Millisecond
	})
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 1000, Interval: time.Millisecond, Count: 50, Seed: 1})
	p.sender.Stream(src)
	p.nw.Loop().Run()

	if len(p.messages) != 50 {
		t.Fatalf("delivered %d", len(p.messages))
	}
	for _, m := range p.messages {
		if !m.Aged {
			t.Fatal("packet not marked aged despite blown budget")
		}
	}
	if p.receiver.Stats.Aged != 50 {
		t.Fatalf("aged count %d", p.receiver.Stats.Aged)
	}
}

func TestEndToEndDeadlineNotificationReachesSensor(t *testing.T) {
	p := newPilotPath(t, 5, 0, ReceiverConfig{}, func(c *BufferConfig) {
		c.DeadlineBudget = time.Millisecond // blown by the 15 ms WAN leg
	})
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 1000, Interval: 5 * time.Millisecond, Count: 30, Seed: 1})
	p.sender.Stream(src)
	p.nw.Loop().Run()

	// The switch's deadline marker fires (suppressed to ≤1 per 10 ms) and
	// the notification is routed back through DTN1 to the sensor.
	if p.sender.Stats.DeadlineMiss == 0 {
		t.Fatal("sensor never notified of deadline misses")
	}
	// The destination check also flags the messages late.
	if p.receiver.Stats.Late != 30 {
		t.Fatalf("late count %d", p.receiver.Stats.Late)
	}
}

func TestEndToEndEncryptedPayloads(t *testing.T) {
	cipher := NewXORKeystream(0x0123456789ABCDEF)
	modeEnc := ModeWAN
	modeEnc.Features |= wire.FeatEncrypted
	p := newPilotPath(t, 6, 0,
		ReceiverConfig{Cipher: cipher},
		func(c *BufferConfig) {
			c.Upgrade = modeEnc
			c.Cipher = cipher
		})
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 500, Interval: time.Millisecond, Count: 20, Seed: 9})
	want := daq.Drain(daq.NewGeneric(daq.GenericConfig{MessageSize: 500, Interval: time.Millisecond, Count: 20, Seed: 9}), 0)
	p.sender.Stream(src)
	p.nw.Loop().Run()

	if len(p.messages) != 20 {
		t.Fatalf("delivered %d", len(p.messages))
	}
	for i, m := range p.messages {
		if string(m.Payload) != string(want[i].Data) {
			t.Fatalf("message %d corrupted by encryption round trip", i)
		}
	}
}

func TestEndToEndAcksTrimBuffer(t *testing.T) {
	p := newPilotPath(t, 7, 0, ReceiverConfig{AckInterval: 10 * time.Millisecond}, nil)
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 5000, Interval: time.Millisecond, Count: 100, Seed: 3})
	p.sender.Stream(src)
	p.nw.Loop().Run()

	if p.dtn1.Stats.Trimmed == 0 {
		t.Fatalf("acks never trimmed the buffer: %+v", p.dtn1.Stats)
	}
	if p.dtn1.BufferedBytes() >= 100*5000 {
		t.Fatalf("buffer occupancy %d not reduced", p.dtn1.BufferedBytes())
	}
}

func TestEndToEndModeProgression(t *testing.T) {
	// Inspect what actually crosses each link: bare before DTN1,
	// WAN mode after it.
	p := newPilotPath(t, 8, 0, ReceiverConfig{}, nil)
	var sawBare, sawWAN bool
	p.dtn1.Node().Ports[0].Peer.Node.Net.Loop() // silence linters; topology reach
	// Wrap the receiver-side check through delivered messages plus a tap
	// on DTN1 ingress via sender stats: simplest faithful probe is the
	// wire itself — capture frames by adding a drop observer? Instead,
	// check via the mode carried on delivered messages' sequence
	// presence: bare mode has no seq; all delivered messages carry one.
	src := daq.NewGeneric(daq.GenericConfig{MessageSize: 100, Interval: time.Millisecond, Count: 10, Seed: 2})
	p.sender.Stream(src)
	p.nw.Loop().Run()
	for _, m := range p.messages {
		if m.Seq != 0 {
			sawWAN = true
		}
	}
	sawBare = p.sender.Stats.Sent == 10 && p.dtn1.Stats.Upgraded == 10
	if !sawBare || !sawWAN {
		t.Fatalf("mode progression broken: bare=%v wan=%v", sawBare, sawWAN)
	}
}
