package core

import (
	"repro/internal/dmtp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// loopClock adapts the simulator's virtual time and event loop to the
// engine Clock contract. The epoch is virtual time zero; sim.Time is
// already int64 nanoseconds.
type loopClock struct {
	nw *netsim.Network
}

func (c loopClock) Now() int64 { return int64(c.nw.Now()) }

func (c loopClock) Schedule(at int64, fn func()) dmtp.Timer {
	t := sim.Time(at)
	if now := c.nw.Now(); t < now {
		t = now
	}
	return &simTimerBox{c.nw.Loop().At(t, fn)}
}

// simTimerBox lifts the value-type sim.Timer handle behind the Timer
// interface.
type simTimerBox struct{ t sim.Timer }

func (b *simTimerBox) Stop() { b.t.Stop() }

// nodeDatapath sends engine output through a netsim node. Data sends
// are cloned first: the engine retains ownership of what it hands to
// SendData, while a netsim frame keeps its Data slice in flight.
type nodeDatapath struct {
	node func() *netsim.Node
	nw   *netsim.Network
	// port, when non-negative, routes sends out a specific port (the
	// buffer node's WAN egress); otherwise the node's default routing
	// via SendTo applies.
	port int
}

func (d nodeDatapath) SendControl(dst wire.Addr, pkt []byte) {
	d.sendOwned(dst, pkt)
}

func (d nodeDatapath) SendData(dst wire.Addr, pkt []byte) {
	d.sendOwned(dst, []byte(wire.View(pkt).Clone()))
}

func (d nodeDatapath) sendOwned(dst wire.Addr, pkt []byte) {
	n := d.node()
	if n == nil {
		return
	}
	if d.port < 0 {
		n.SendTo(dst, pkt)
		return
	}
	n.Port(d.port).Send(&netsim.Frame{
		Src:  n.Addr,
		Dst:  dst,
		Data: pkt,
		Born: d.nw.Now(),
	})
}
