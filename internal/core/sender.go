package core

import (
	"time"

	"repro/internal/daq"
	"repro/internal/dmtp"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SenderConfig configures an instrument-side DMTP source.
type SenderConfig struct {
	// Experiment is the 24-bit experiment number; the slice byte comes
	// from each DAQ record (Req 8).
	Experiment uint32
	// Dst is the next stage — normally the first-line DTN (DTN 1).
	Dst wire.Addr
	// Mode is the emission mode; sensors use ModeBare (paper §5.3: "DAQ
	// data starts out in mode 0 at the sensor").
	Mode Mode
	// RateMbps, when nonzero, paces emission with a token bucket instead
	// of sending at the workload's natural schedule.
	RateMbps uint32
	// DupGroup and DupScope populate the duplication extension when the
	// mode carries FeatDuplicate (alert distribution, Req 10).
	DupGroup uint32
	DupScope uint8
	// DeadlineBudget populates the timeliness extension when the mode
	// carries FeatTimely: deadline = emission time + budget.
	DeadlineBudget time.Duration
	// DeadlineNotify is where deadline violations are reported.
	DeadlineNotify wire.Addr
	// RecoverInterval is how often a back-pressured sender doubles its
	// rate back toward unpaced; zero means 10 ms.
	RecoverInterval time.Duration
	// Recorder, when non-nil, receives back-pressure flight-recorder
	// events stamped with virtual time. Nil disables recording.
	Recorder *metrics.FlightRecorder
	// TraceSample, when positive, emits every TraceSample'th message with
	// a sampled FeatTraced extension (1 = trace everything). Zero disables
	// trace origination; unsampled messages carry no trace extension.
	TraceSample int
}

// SenderStats are cumulative sender counters.
type SenderStats struct {
	Sent         uint64
	SentBytes    uint64
	Queued       uint64 // messages that waited for pacing tokens
	BackPressure uint64 // signals received
	DeadlineMiss uint64 // deadline-exceeded notifications received
}

// Sender is the DAQ source endpoint (① in Fig. 3). It emits each workload
// record as one DMTP datagram (Req 7 — message abstraction) and reacts to
// back-pressure signals relayed by the network (paper §5.1).
// Encapsulation and pacing live in the dmtp sender engine (Encap +
// Pacer); this type adapts them to the simulator substrate.
type Sender struct {
	cfg  SenderConfig
	node *netsim.Node
	nw   *netsim.Network

	Stats SenderStats
	// Done is set once the workload source is exhausted and the queue is
	// drained.
	Done bool
	// OnDone, if non-nil, runs when the sender finishes.
	OnDone func()

	src   daq.Source
	enc   dmtp.Encap
	pacer *dmtp.Pacer

	meter telemetry.Meter
}

// NewSender creates a sender and registers its node on the network.
func NewSender(nw *netsim.Network, name string, addr wire.Addr, cfg SenderConfig) *Sender {
	if cfg.RecoverInterval == 0 {
		cfg.RecoverInterval = 10 * time.Millisecond
	}
	s := &Sender{cfg: cfg, nw: nw}
	s.enc = dmtp.Encap{
		ConfigID:       cfg.Mode.ConfigID,
		Features:       cfg.Mode.Features,
		Experiment:     cfg.Experiment,
		DupGroup:       cfg.DupGroup,
		DupScope:       cfg.DupScope,
		DeadlineBudget: cfg.DeadlineBudget,
		DeadlineNotify: cfg.DeadlineNotify,
		TraceSample:    cfg.TraceSample,
	}
	s.pacer = dmtp.NewPacer(loopClock{nw}, dmtp.PacerConfig{
		RateMbps:        cfg.RateMbps,
		RecoverInterval: cfg.RecoverInterval,
		Send:            s.sendNow,
		OnIdle:          s.maybeDone,
	})
	s.node = nw.AddNode(name, addr, s)
	return s
}

// Node returns the sender's network node.
func (s *Sender) Node() *netsim.Node { return s.node }

// Meter returns the sender's emission meter.
func (s *Sender) Meter() telemetry.Meter { return s.meter }

// RegisterMetrics publishes the sender's dmtp.tx.* counters on reg, so a
// simulator sender exports the same names a live one does (the live-only
// socket counters simply stay absent). The simulator loop is
// single-threaded: sample the registry from loop context or after the run
// has drained.
func (s *Sender) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterFunc(metrics.MetricTxSent, func() int64 { return int64(s.Stats.Sent) })
	reg.RegisterFunc(metrics.MetricTxSentBytes, func() int64 { return int64(s.Stats.SentBytes) })
	reg.RegisterFunc(metrics.MetricTxQueued, func() int64 { return int64(s.Stats.Queued) })
	reg.RegisterFunc(metrics.MetricTxBackPressure, func() int64 { return int64(s.Stats.BackPressure) })
	reg.RegisterFunc(metrics.MetricTxDeadlineMisses, func() int64 { return int64(s.Stats.DeadlineMiss) })
	dmtp.RegisterPoolMetrics(reg)
}

// Attach implements netsim.Handler.
func (s *Sender) Attach(n *netsim.Node) {
	s.node = n
	// Back-pressure signals come home to the sender.
	s.enc.BackPressureSink = n.Addr
}

// HandleFrame implements netsim.Handler: the sensor receives only control
// traffic (back-pressure, deadline notifications).
func (s *Sender) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil || !v.IsControl() {
		return
	}
	switch v.ConfigID() {
	case wire.ConfigBackPressure:
		sig, err := wire.DecodeBackPressure(f.Data)
		if err != nil {
			return
		}
		s.Stats.BackPressure++
		s.cfg.Recorder.RecordAt(int64(s.nw.Now()), metrics.EvBackPressure,
			uint64(sig.Experiment), 0, uint64(sig.Level))
		s.pacer.ApplyBackPressure(sig)
	case wire.ConfigDeadlineExceeded:
		if _, err := wire.DecodeDeadlineExceeded(f.Data); err == nil {
			s.Stats.DeadlineMiss++
		}
	}
}

// Stream schedules the whole workload source: each record is emitted at
// its generation time (or queued under pacing/back-pressure).
func (s *Sender) Stream(src daq.Source) {
	s.src = src
	s.scheduleNext()
}

func (s *Sender) scheduleNext() {
	rec, ok := s.src.Next()
	if !ok {
		s.src = nil
		s.maybeDone()
		return
	}
	at := sim.Time(rec.At)
	if at < s.nw.Now() {
		at = s.nw.Now()
	}
	s.nw.Loop().At(at, func() {
		s.Emit(rec.Data, rec.Slice)
		s.scheduleNext()
	})
}

// Emit sends one DAQ message now (or queues it under pacing).
func (s *Sender) Emit(msg []byte, slice uint8) {
	pkt, err := s.enc.AppendPacket(nil, int64(s.nw.Now()), msg, slice)
	if err != nil {
		panic(err) // modes are validated at construction
	}
	if s.pacer.Submit(pkt) {
		s.Stats.Queued++
	}
}

func (s *Sender) sendNow(pkt []byte) {
	s.node.SendTo(s.cfg.Dst, pkt)
	s.Stats.Sent++
	s.Stats.SentBytes += uint64(len(pkt))
	s.meter.Add(len(pkt))
}

func (s *Sender) maybeDone() {
	if s.src == nil && s.pacer.Idle() && !s.Done {
		s.Done = true
		if s.OnDone != nil {
			s.OnDone()
		}
	}
}
