package core

import (
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SenderConfig configures an instrument-side DMTP source.
type SenderConfig struct {
	// Experiment is the 24-bit experiment number; the slice byte comes
	// from each DAQ record (Req 8).
	Experiment uint32
	// Dst is the next stage — normally the first-line DTN (DTN 1).
	Dst wire.Addr
	// Mode is the emission mode; sensors use ModeBare (paper §5.3: "DAQ
	// data starts out in mode 0 at the sensor").
	Mode Mode
	// RateMbps, when nonzero, paces emission with a token bucket instead
	// of sending at the workload's natural schedule.
	RateMbps uint32
	// DupGroup and DupScope populate the duplication extension when the
	// mode carries FeatDuplicate (alert distribution, Req 10).
	DupGroup uint32
	DupScope uint8
	// DeadlineBudget populates the timeliness extension when the mode
	// carries FeatTimely: deadline = emission time + budget.
	DeadlineBudget time.Duration
	// DeadlineNotify is where deadline violations are reported.
	DeadlineNotify wire.Addr
	// RecoverInterval is how often a back-pressured sender doubles its
	// rate back toward unpaced; zero means 10 ms.
	RecoverInterval time.Duration
}

// SenderStats are cumulative sender counters.
type SenderStats struct {
	Sent         uint64
	SentBytes    uint64
	Queued       uint64 // messages that waited for pacing tokens
	BackPressure uint64 // signals received
	DeadlineMiss uint64 // deadline-exceeded notifications received
}

// Sender is the DAQ source endpoint (① in Fig. 3). It emits each workload
// record as one DMTP datagram (Req 7 — message abstraction) and reacts to
// back-pressure signals relayed by the network (paper §5.1).
type Sender struct {
	cfg  SenderConfig
	node *netsim.Node
	nw   *netsim.Network

	Stats SenderStats
	// Done is set once the workload source is exhausted and the queue is
	// drained.
	Done bool
	// OnDone, if non-nil, runs when the sender finishes.
	OnDone func()

	src     daq.Source
	pending [][]byte // paced/back-pressured backlog

	rateMbps   uint32 // 0 = unpaced
	paused     bool
	tokens     float64 // bytes
	lastRefill sim.Time
	drainTimer sim.Timer
	recover    sim.Timer

	meter telemetry.Meter
}

// NewSender creates a sender and registers its node on the network.
func NewSender(nw *netsim.Network, name string, addr wire.Addr, cfg SenderConfig) *Sender {
	if cfg.RecoverInterval == 0 {
		cfg.RecoverInterval = 10 * time.Millisecond
	}
	s := &Sender{cfg: cfg, nw: nw, rateMbps: cfg.RateMbps}
	s.node = nw.AddNode(name, addr, s)
	return s
}

// Node returns the sender's network node.
func (s *Sender) Node() *netsim.Node { return s.node }

// Meter returns the sender's emission meter.
func (s *Sender) Meter() telemetry.Meter { return s.meter }

// Attach implements netsim.Handler.
func (s *Sender) Attach(n *netsim.Node) { s.node = n }

// HandleFrame implements netsim.Handler: the sensor receives only control
// traffic (back-pressure, deadline notifications).
func (s *Sender) HandleFrame(_ *netsim.Port, f *netsim.Frame) {
	v := wire.View(f.Data)
	if _, err := v.Check(); err != nil || !v.IsControl() {
		return
	}
	switch v.ConfigID() {
	case wire.ConfigBackPressure:
		sig, err := wire.DecodeBackPressure(f.Data)
		if err != nil {
			return
		}
		s.Stats.BackPressure++
		s.applyBackPressure(sig)
	case wire.ConfigDeadlineExceeded:
		if _, err := wire.DecodeDeadlineExceeded(f.Data); err == nil {
			s.Stats.DeadlineMiss++
		}
	}
}

func (s *Sender) applyBackPressure(sig *wire.BackPressureSignal) {
	if sig.Level == 0 {
		s.paused = false
		s.rateMbps = s.cfg.RateMbps
		s.kickDrain()
		return
	}
	switch {
	case sig.RateHintMbps > 0:
		s.rateMbps = sig.RateHintMbps
	case s.rateMbps > 0:
		s.rateMbps /= 2
		if s.rateMbps == 0 {
			s.rateMbps = 1
		}
	default:
		// Unpaced sender with no hint: halve from link-ish speed.
		s.rateMbps = 1000
	}
	if sig.Level == 255 {
		s.paused = true
	}
	// Schedule gradual recovery: double the rate periodically until back
	// to the configured behaviour.
	s.recover.Stop()
	s.recover = s.nw.Loop().After(s.cfg.RecoverInterval, s.recoverStep)
}

func (s *Sender) recoverStep() {
	s.paused = false
	if s.cfg.RateMbps == 0 && s.rateMbps >= 100_000 {
		s.rateMbps = 0 // fully recovered to unpaced
	} else if s.cfg.RateMbps != 0 && s.rateMbps >= s.cfg.RateMbps {
		s.rateMbps = s.cfg.RateMbps
	} else {
		s.rateMbps *= 2
		s.recover = s.nw.Loop().After(s.cfg.RecoverInterval, s.recoverStep)
	}
	s.kickDrain()
}

// Stream schedules the whole workload source: each record is emitted at
// its generation time (or queued under pacing/back-pressure).
func (s *Sender) Stream(src daq.Source) {
	s.src = src
	s.scheduleNext()
}

func (s *Sender) scheduleNext() {
	rec, ok := s.src.Next()
	if !ok {
		s.src = nil
		s.maybeDone()
		return
	}
	at := sim.Time(rec.At)
	if at < s.nw.Now() {
		at = s.nw.Now()
	}
	s.nw.Loop().At(at, func() {
		s.Emit(rec.Data, rec.Slice)
		s.scheduleNext()
	})
}

// Emit sends one DAQ message now (or queues it under pacing).
func (s *Sender) Emit(msg []byte, slice uint8) {
	pkt := s.encap(msg, slice)
	if s.rateMbps == 0 && !s.paused && len(s.pending) == 0 {
		s.sendNow(pkt)
		return
	}
	s.pending = append(s.pending, pkt)
	s.Stats.Queued++
	s.kickDrain()
}

func (s *Sender) encap(msg []byte, slice uint8) []byte {
	h := wire.Header{
		ConfigID:   s.cfg.Mode.ConfigID,
		Features:   s.cfg.Mode.Features,
		Experiment: wire.NewExperimentID(s.cfg.Experiment, slice),
	}
	if h.Features.Has(wire.FeatTimestamped) {
		h.Timestamp.OriginNanos = s.nw.Now().Nanos()
	}
	if h.Features.Has(wire.FeatDuplicate) {
		h.Dup = wire.DupExt{Group: s.cfg.DupGroup, Scope: s.cfg.DupScope}
	}
	if h.Features.Has(wire.FeatBackPressure) {
		// Signals come home to the sender.
		h.BackPressure.Sink = s.node.Addr
	}
	if h.Features.Has(wire.FeatTimely) && s.cfg.DeadlineBudget > 0 {
		h.Deadline = wire.DeadlineExt{
			DeadlineNanos: s.nw.Now().Add(s.cfg.DeadlineBudget).Nanos(),
			Notify:        s.cfg.DeadlineNotify,
		}
	}
	pkt, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(msg)))
	if err != nil {
		panic(err) // modes are validated at construction
	}
	return append(pkt, msg...)
}

func (s *Sender) sendNow(pkt []byte) {
	s.node.SendTo(s.cfg.Dst, pkt)
	s.Stats.Sent++
	s.Stats.SentBytes += uint64(len(pkt))
	s.meter.Add(len(pkt))
}

// kickDrain drains the pending queue subject to pause state and the token
// bucket.
func (s *Sender) kickDrain() {
	if s.drainTimer.Pending() {
		return // drain already scheduled
	}
	s.drain()
}

func (s *Sender) drain() {
	s.drainTimer = sim.Timer{}
	if s.paused {
		return // resumed by a recovery step or a clear signal
	}
	now := s.nw.Now()
	if s.rateMbps > 0 {
		elapsed := now.Sub(s.lastRefill)
		s.tokens += float64(s.rateMbps) * 1e6 / 8 * elapsed.Seconds()
		burst := float64(s.rateMbps) * 1e6 / 8 * 0.001 // 1 ms of burst
		if burst < 64<<10 {
			burst = 64 << 10
		}
		if s.tokens > burst {
			s.tokens = burst
		}
	}
	s.lastRefill = now
	for len(s.pending) > 0 {
		pkt := s.pending[0]
		if s.rateMbps > 0 && s.tokens < float64(len(pkt)) {
			// Sleep until enough tokens accumulate.
			need := float64(len(pkt)) - s.tokens
			wait := time.Duration(need / (float64(s.rateMbps) * 1e6 / 8) * float64(time.Second))
			if wait <= 0 {
				wait = time.Microsecond
			}
			s.drainTimer = s.nw.Loop().After(wait, s.drain)
			return
		}
		if s.rateMbps > 0 {
			s.tokens -= float64(len(pkt))
		}
		s.pending = s.pending[1:]
		s.sendNow(pkt)
	}
	s.maybeDone()
}

func (s *Sender) maybeDone() {
	if s.src == nil && len(s.pending) == 0 && !s.Done {
		s.Done = true
		if s.OnDone != nil {
			s.OnDone()
		}
	}
}
