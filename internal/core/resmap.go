package core

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// ResourceKind classifies an in-network programmable resource.
type ResourceKind uint8

// Resource kinds.
const (
	// KindBuffer is a retransmission buffer (FPGA NIC or DTN store).
	KindBuffer ResourceKind = iota + 1
	// KindModeChanger is a programmable element that can rewrite modes.
	KindModeChanger
	// KindDuplicator can clone streams toward distribution groups.
	KindDuplicator
	// KindTelemetry exports per-experiment counters.
	KindTelemetry
)

func (k ResourceKind) String() string {
	switch k {
	case KindBuffer:
		return "buffer"
	case KindModeChanger:
		return "mode-changer"
	case KindDuplicator:
		return "duplicator"
	case KindTelemetry:
		return "telemetry"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Segment describes one network segment a DAQ stream crosses: the DAQ
// Ethernet, a WAN, a facility fabric, a campus network. The properties are
// what operators capacity-plan and therefore can publish (paper §4.2: the
// segment properties "are not necessarily abstracted from communicating
// peers or other network operators").
type Segment struct {
	Name string
	// RTT is the segment round-trip time.
	RTT time.Duration
	// RateBps is the provisioned rate.
	RateBps float64
	// LossProb is the expected residual loss (corruption) probability.
	LossProb float64
	// Shared marks segments carrying non-DAQ traffic (the WAN, campus).
	Shared bool
}

// Resource is one entry in the shared resource map: a programmable element
// and what it can do (paper §6: "This map is shared between network
// operators … to describe their programmable infrastructure and its
// capabilities").
type Resource struct {
	Name string
	Addr wire.Addr
	Kind ResourceKind
	// Segment indexes the segment at whose downstream edge the resource
	// sits (resources between segment i and i+1 carry index i).
	Segment int
	// CapacityBytes sizes buffers.
	CapacityBytes int
}

// ResourceMap is the ordered path description: the segments a stream
// crosses, source to destination, and the programmable resources on it.
type ResourceMap struct {
	Segments  []Segment
	Resources []Resource
}

// Validate checks internal consistency.
func (m *ResourceMap) Validate() error {
	if len(m.Segments) == 0 {
		return fmt.Errorf("core: resource map has no segments")
	}
	for _, r := range m.Resources {
		if r.Segment < 0 || r.Segment >= len(m.Segments) {
			return fmt.Errorf("core: resource %q references segment %d of %d", r.Name, r.Segment, len(m.Segments))
		}
		if r.Kind == 0 {
			return fmt.Errorf("core: resource %q has no kind", r.Name)
		}
	}
	return nil
}

// NearestBuffer returns the buffer resource closest upstream of (i.e. with
// the greatest segment index not exceeding) segment seg.
func (m *ResourceMap) NearestBuffer(seg int) (Resource, bool) {
	best := Resource{Segment: -1}
	for _, r := range m.Resources {
		if r.Kind == KindBuffer && r.Segment <= seg && r.Segment > best.Segment {
			best = r
		}
	}
	return best, best.Segment >= 0
}

// ResourcesIn lists resources sitting at segment seg.
func (m *ResourceMap) ResourcesIn(seg int) []Resource {
	var out []Resource
	for _, r := range m.Resources {
		if r.Segment == seg {
			out = append(out, r)
		}
	}
	return out
}

// SegmentPlan is the planned transport configuration for one segment.
type SegmentPlan struct {
	Segment Segment
	// Mode the stream should carry across this segment.
	Mode Mode
	// Buffer is the retransmission source receivers on this segment
	// should NAK (zero when the mode is not reliable).
	Buffer wire.Addr
	// MaxAge and DeadlineBudget configure the age/timeliness features.
	MaxAge         time.Duration
	DeadlineBudget time.Duration
}

// PlanPolicy tunes the planner.
type PlanPolicy struct {
	// AgeBudgetFactor multiplies the accumulated path RTT to derive the
	// age budget; 4 is the pilot default.
	AgeBudgetFactor int
	// DeadlineBudget is the end-to-end delivery budget; zero derives one
	// from the path RTT sum.
	DeadlineBudget time.Duration
}

// Plan derives per-segment modes from the resource map, mirroring the pilot
// study's 3-mode setup (§5.4) generalised to any path: segments with an
// upstream buffer run the recoverable WAN mode, the final segment runs the
// delivery mode, and buffer-less leading segments (the DAQ network, where
// there is no congestion and no retransmission) run bare.
func Plan(m *ResourceMap, pol PlanPolicy) ([]SegmentPlan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if pol.AgeBudgetFactor == 0 {
		pol.AgeBudgetFactor = 4
	}
	var pathRTT time.Duration
	for _, s := range m.Segments {
		pathRTT += s.RTT
	}
	deadline := pol.DeadlineBudget
	if deadline == 0 {
		deadline = time.Duration(pol.AgeBudgetFactor) * pathRTT
	}
	plans := make([]SegmentPlan, len(m.Segments))
	for i, seg := range m.Segments {
		p := SegmentPlan{Segment: seg, Mode: ModeBare}
		// A segment is recoverable when a buffer sits at or upstream of
		// its entrance (strictly before this segment).
		if buf, ok := m.NearestBuffer(i - 1); ok {
			p.Mode = ModeWAN
			p.Buffer = buf.Addr
			p.MaxAge = time.Duration(pol.AgeBudgetFactor) * pathRTT
			p.DeadlineBudget = deadline
		}
		// The final segment downgrades to the delivery mode (reliability
		// pointer stripped, timeliness checked at the destination) only
		// when loss recovery already completed on an earlier segment —
		// i.e. the previous segment was itself recoverable. In a
		// two-segment pilot the WAN is the last segment and must keep
		// its retransmission pointer.
		if i == len(m.Segments)-1 && i >= 2 &&
			p.Mode.ConfigID == ModeWAN.ConfigID &&
			plans[i-1].Mode.ConfigID == ModeWAN.ConfigID {
			p.Mode = ModeDeliver
		}
		plans[i] = p
	}
	return plans, nil
}
