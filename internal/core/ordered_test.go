package core

import (
	"testing"
	"time"

	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func orderedPath(t *testing.T, ordered bool, loss float64) (*netsim.Network, *Receiver, *[]uint64) {
	t.Helper()
	nw := netsim.New(8)
	sensorAddr := wire.AddrFrom(10, 15, 0, 1, 1)
	dtnAddr := wire.AddrFrom(10, 15, 1, 1, 1)
	dstAddr := wire.AddrFrom(10, 15, 2, 1, 1)
	var seqs []uint64
	rcv := NewReceiver(nw, "dst", dstAddr, ReceiverConfig{
		Ordered:  ordered,
		NAKRetry: 40 * time.Millisecond,
		OnMessage: func(m Message) {
			seqs = append(seqs, m.Seq)
		},
	})
	dtn := NewBufferNode(nw, "dtn", dtnAddr, BufferConfig{
		UpgradeFrom: ModeBare.ConfigID,
		Upgrade:     ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      time.Second,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	snd := NewSender(nw, "sensor", sensorAddr, SenderConfig{
		Experiment: 5, Dst: dtnAddr, Mode: ModeBare,
	})
	nw.Connect(snd.Node(), dtn.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 10 * time.Microsecond})
	nw.Connect(dtn.Node(), rcv.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(10), Delay: 15 * time.Millisecond, LossProb: loss})
	snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 4000, Interval: 30 * time.Microsecond, Count: 1000, Seed: 3,
	}))
	nw.Loop().Run()
	return nw, rcv, &seqs
}

func TestOrderedDeliveryIsInOrderUnderLoss(t *testing.T) {
	_, rcv, seqs := orderedPath(t, true, 0.01)
	if len(*seqs) != 1000 {
		t.Fatalf("delivered %d", len(*seqs))
	}
	for i := 1; i < len(*seqs); i++ {
		if (*seqs)[i] <= (*seqs)[i-1] {
			t.Fatalf("ordered delivery violated at %d: %d after %d", i, (*seqs)[i], (*seqs)[i-1])
		}
	}
	// The ablation's point: ordering reintroduces head-of-line blocking
	// at recovery-RTT scale even on DMTP.
	if rcv.OrderedHOL.Count() == 0 {
		t.Fatal("no HOL samples")
	}
	if max := time.Duration(rcv.OrderedHOL.Max()); max < 20*time.Millisecond {
		t.Fatalf("ordered HOL max %v; expected a recovery round trip", max)
	}
}

func TestUnorderedDeliveryInterleavesRecoveries(t *testing.T) {
	_, rcv, seqs := orderedPath(t, false, 0.01)
	if len(*seqs) != 1000 {
		t.Fatalf("delivered %d", len(*seqs))
	}
	inversions := 0
	for i := 1; i < len(*seqs); i++ {
		if (*seqs)[i] < (*seqs)[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("recovered messages should arrive out of order by design")
	}
	if rcv.Stats.Recovered == 0 {
		t.Fatal("no recoveries; test vacuous")
	}
}

func TestOrderedDeliverySkipsWrittenOffLosses(t *testing.T) {
	// With recovery effectively disabled (buffer never reached: MaxNAKs
	// exhausts fast), ordered delivery must not deadlock behind permanent
	// losses — written-off slots are skipped.
	nw := netsim.New(8)
	sensorAddr := wire.AddrFrom(10, 16, 0, 1, 1)
	dtnAddr := wire.AddrFrom(10, 16, 1, 1, 1)
	dstAddr := wire.AddrFrom(10, 16, 2, 1, 1)
	var delivered int
	rcv := NewReceiver(nw, "dst", dstAddr, ReceiverConfig{
		Ordered:  true,
		NAKDelay: 100 * time.Microsecond,
		NAKRetry: 500 * time.Microsecond, // well under the 30 ms recovery RTT
		MaxNAKs:  2,
		OnMessage: func(m Message) {
			delivered++
		},
	})
	dtn := NewBufferNode(nw, "dtn", dtnAddr, BufferConfig{
		UpgradeFrom:   ModeBare.ConfigID,
		Upgrade:       ModeWAN,
		Forward:       dstAddr,
		ForwardPort:   1,
		MaxAge:        time.Second,
		CapacityBytes: 4096, // nearly no buffer: most NAKs miss
		Routes:        map[wire.Addr]int{sensorAddr: 0},
	})
	snd := NewSender(nw, "sensor", sensorAddr, SenderConfig{Experiment: 5, Dst: dtnAddr, Mode: ModeBare})
	nw.Connect(snd.Node(), dtn.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 10 * time.Microsecond})
	nw.Connect(dtn.Node(), rcv.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(10), Delay: 15 * time.Millisecond, LossProb: 0.05})
	snd.Stream(daq.NewGeneric(daq.GenericConfig{
		MessageSize: 1000, Interval: 30 * time.Microsecond, Count: 500, Seed: 3,
	}))
	nw.Loop().Run()

	if rcv.Stats.Lost == 0 {
		t.Fatal("no permanent losses; test vacuous")
	}
	if delivered == 0 || uint64(delivered)+rcv.Stats.Lost < 490 {
		t.Fatalf("ordered delivery stalled: delivered=%d lost=%d", delivered, rcv.Stats.Lost)
	}
	if rcv.OutstandingGaps() != 0 {
		t.Fatalf("%d gaps outstanding at quiescence", rcv.OutstandingGaps())
	}
}
