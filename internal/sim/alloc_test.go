package sim

import "testing"

// TestScheduleFireZeroAlloc locks in the pooled event steady state: after
// warm-up, an After→Step cycle performs no heap allocation. The callback is
// hoisted so the closure itself is not allocated per cycle (per-packet
// simulator callers hold their closures in pooled op structs the same way).
func TestScheduleFireZeroAlloc(t *testing.T) {
	l := NewLoop()
	fn := func() {}
	l.After(1, fn)
	l.Run() // warm the free list
	if avg := testing.AllocsPerRun(500, func() {
		l.After(1, fn)
		l.Step()
	}); avg != 0 {
		t.Fatalf("schedule/fire allocates %.1f allocs/op, want 0", avg)
	}
}

// TestScheduleStopZeroAlloc locks in the schedule→cancel cycle: Stop
// recycles the event eagerly, so rescheduling churn (retransmission timers
// being re-armed per packet) allocates nothing.
func TestScheduleStopZeroAlloc(t *testing.T) {
	l := NewLoop()
	fn := func() {}
	l.After(1, fn).Stop()
	if avg := testing.AllocsPerRun(500, func() {
		tm := l.After(1, fn)
		if !tm.Stop() {
			t.Fatal("Stop reported not pending")
		}
	}); avg != 0 {
		t.Fatalf("schedule/stop allocates %.1f allocs/op, want 0", avg)
	}
	if l.Pending() != 0 {
		t.Fatalf("pending %d after stop churn", l.Pending())
	}
}

// TestStaleTimerHandleIsInert is the use-after-recycle guard: a Timer handle
// held after its event fired must not cancel an unrelated later event that
// reuses the same pooled object.
func TestStaleTimerHandleIsInert(t *testing.T) {
	l := NewLoop()
	stale := l.After(1, func() {})
	l.Run() // fires; the event object goes to the free list
	fired := false
	fresh := l.After(1, func() { fired = true })
	if stale.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if stale.Stop() {
		t.Fatal("stale Stop reported success")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer lost to a stale Stop")
	}
	l.Run()
	if !fired {
		t.Fatal("recycled event's callback did not fire")
	}
}

// TestRecycledCounts sanity-checks the free list actually serves the
// steady state.
func TestRecycledCounts(t *testing.T) {
	l := NewLoop()
	fn := func() {}
	for i := 0; i < 100; i++ {
		l.After(1, fn)
		l.Step()
	}
	if l.Recycled() < 90 {
		t.Fatalf("recycled only %d of 100 cycles", l.Recycled())
	}
}
