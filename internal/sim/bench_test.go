package sim_test

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkSimLoop measures the steady-state schedule→fire cycle of the
// discrete-event loop: every simulated packet transmission and propagation
// pays this cost twice, so it bounds simulator throughput for E1–E5.
func BenchmarkSimLoop(b *testing.B) {
	l := sim.NewLoop()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.After(time.Microsecond, fn)
		l.Step()
	}
}

// BenchmarkSimTimerReschedule measures the schedule→stop cycle: the RTO-style
// pattern (arm, then cancel and re-arm on progress) the TCP baseline and the
// DMTP receiver gap timers follow for every packet.
func BenchmarkSimTimerReschedule(b *testing.B) {
	l := sim.NewLoop()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := l.After(time.Millisecond, fn)
		t.Stop()
		if l.Pending() > 1<<16 {
			b.StopTimer()
			l.Run()
			b.StartTimer()
		}
	}
}
