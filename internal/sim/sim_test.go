package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	l := NewLoop()
	var got []Time
	for _, d := range []time.Duration{5 * time.Millisecond, time.Millisecond, 3 * time.Millisecond} {
		l.After(d, func() { got = append(got, l.Now()) })
	}
	l.Run()
	if len(got) != 3 {
		t.Fatalf("fired %d events", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if got[0] != Time(time.Millisecond) || got[2] != Time(5*time.Millisecond) {
		t.Fatalf("wrong times: %v", got)
	}
}

func TestSameTimeEventsFireInInsertionOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(100, func() { got = append(got, i) })
	}
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order violated: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop()
	fired := false
	tm := l.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if l.Now() != 0 {
		// Cancelled events should not advance time when skipped before firing.
		t.Fatalf("clock advanced to %v by cancelled event", l.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	l := NewLoop()
	var order []string
	l.After(time.Millisecond, func() {
		order = append(order, "a")
		l.After(time.Millisecond, func() { order = append(order, "c") })
	})
	l.After(1500*time.Microsecond, func() { order = append(order, "b") })
	l.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	l := NewLoop()
	l.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.At(0, func() {})
	})
	l.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewLoop().After(-time.Second, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop()
	count := 0
	l.After(time.Millisecond, func() { count++ })
	l.After(time.Hour, func() { count++ })
	l.RunUntil(Time(time.Second))
	if count != 1 {
		t.Fatalf("fired %d events, want 1", count)
	}
	if l.Now() != Time(time.Second) {
		t.Fatalf("clock %v, want 1s", l.Now())
	}
	l.Run()
	if count != 2 {
		t.Fatalf("remaining event lost")
	}
}

func TestRunForIsRelative(t *testing.T) {
	l := NewLoop()
	l.RunFor(time.Second)
	l.RunFor(time.Second)
	if l.Now() != Time(2*time.Second) {
		t.Fatalf("clock %v", l.Now())
	}
}

func TestDeterminismUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []Time {
		l := NewLoop()
		r := rand.New(rand.NewSource(seed))
		var fired []Time
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 4 {
				return
			}
			n := r.Intn(4)
			for i := 0; i < n; i++ {
				l.After(time.Duration(r.Intn(1000))*time.Microsecond, func() {
					fired = append(fired, l.Now())
					schedule(depth + 1)
				})
			}
		}
		for i := 0; i < 50; i++ {
			l.After(time.Duration(r.Intn(100000))*time.Microsecond, func() {
				fired = append(fired, l.Now())
				schedule(0)
			})
		}
		l.Run()
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(0).Add(3 * time.Second)
	if x.Sub(Time(time.Second)) != 2*time.Second {
		t.Fatal("Sub")
	}
	if Time(-5).Nanos() != 0 {
		t.Fatal("negative Nanos must clamp")
	}
	if Time(12).Nanos() != 12 {
		t.Fatal("Nanos")
	}
	if x.String() != "3s" {
		t.Fatalf("String %q", x.String())
	}
}

func TestProcessedAndPending(t *testing.T) {
	l := NewLoop()
	l.After(1, func() {})
	tm := l.After(2, func() {})
	tm.Stop()
	if l.Pending() != 1 {
		t.Fatalf("pending %d: Stop must remove the event eagerly", l.Pending())
	}
	l.Run()
	if l.Processed() != 1 {
		t.Fatalf("processed %d", l.Processed())
	}
}
