// Package sim provides the discrete-event simulation engine on which the
// network substrate (internal/netsim) runs. It replaces the paper's physical
// testbeds (FABRIC, the 100 GbE lab) with a deterministic virtual time base:
// events execute in strict (time, insertion-order) sequence, so every
// experiment in this repository is exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for call-site readability.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanos returns t as an unsigned nanosecond count, clamping negatives to 0.
// Wire timestamps (wire.DeadlineExt, wire.TimestampExt) use this form.
func (t Time) Nanos() uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t)
}

func (t Time) String() string { return Duration(t).String() }

// Timer is a handle to a scheduled event. The zero value is invalid; Timers
// are created by Loop.At and Loop.After.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index, -1 once fired or cancelled
	stopped bool
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// When returns the virtual time the timer is (or was) scheduled for.
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Loop is a single-threaded discrete-event loop. It is not safe for
// concurrent use; all simulated components run inside its callbacks.
type Loop struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts fired (non-cancelled) events, for diagnostics.
	processed uint64
}

// NewLoop returns an empty loop at time zero.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events fired so far.
func (l *Loop) Processed() uint64 { return l.processed }

// Pending returns the number of scheduled (possibly cancelled) events.
func (l *Loop) Pending() int { return len(l.events) }

// At schedules fn at absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (l *Loop) At(at Time, fn func()) *Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	l.seq++
	t := &Timer{at: at, seq: l.seq, fn: fn}
	heap.Push(&l.events, t)
	return t
}

// After schedules fn after duration d. Negative durations panic.
func (l *Loop) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return l.At(l.now.Add(d), fn)
}

// Step fires the next pending event, advancing virtual time to it. It
// reports whether an event was fired (cancelled events are skipped
// transparently and do not count).
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		t := heap.Pop(&l.events).(*Timer)
		if t.stopped {
			continue
		}
		l.now = t.at
		l.processed++
		t.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (even if no event landed exactly there).
func (l *Loop) RunUntil(deadline Time) {
	for {
		next, ok := l.peek()
		if !ok || next > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunFor advances the clock by d, firing all events inside the window.
func (l *Loop) RunFor(d Duration) { l.RunUntil(l.now.Add(d)) }

// peek returns the time of the next non-cancelled event.
func (l *Loop) peek() (Time, bool) {
	for len(l.events) > 0 {
		t := l.events[0]
		if !t.stopped {
			return t.at, true
		}
		heap.Pop(&l.events)
	}
	return 0, false
}
