// Package sim provides the discrete-event simulation engine on which the
// network substrate (internal/netsim) runs. It replaces the paper's physical
// testbeds (FABRIC, the 100 GbE lab) with a deterministic virtual time base:
// events execute in strict (time, insertion-order) sequence, so every
// experiment in this repository is exactly reproducible from its seed.
//
// The event objects behind Timers are pooled on a per-loop free list and
// recycled when an event fires or is stopped, so the steady-state
// schedule→fire and schedule→stop cycles perform no heap allocation — the
// loop is the substrate under every per-packet simulated operation, making
// its allocation behaviour the floor for simulator throughput.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for call-site readability.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanos returns t as an unsigned nanosecond count, clamping negatives to 0.
// Wire timestamps (wire.DeadlineExt, wire.TimestampExt) use this form.
func (t Time) Nanos() uint64 {
	if t < 0 {
		return 0
	}
	return uint64(t)
}

func (t Time) String() string { return Duration(t).String() }

// event is the pooled heap entry behind a Timer handle. gen is bumped every
// time the event is recycled, so stale Timer handles (held after their event
// fired or was stopped) become inert instead of cancelling an unrelated
// later event that reuses the same object.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index, -1 while on the free list
	gen   uint64
	next  *event // free-list link
	loop  *Loop
}

// Timer is a handle to a scheduled event. The zero value is invalid (its
// Stop and Pending report false); Timers are created by Loop.At and
// Loop.After. Timer is a small value type: copy it freely, compare it to
// the zero Timer to mean "unset".
type Timer struct {
	ev  *event
	gen uint64
	at  Time
}

// Stop cancels the timer, immediately removing its event from the heap and
// recycling it. It reports whether the timer was still pending. Stopping an
// already-fired, already-stopped, or zero Timer is a no-op.
func (t Timer) Stop() bool {
	if !t.Pending() {
		return false
	}
	l := t.ev.loop
	heap.Remove(&l.events, t.ev.index)
	l.free(t.ev)
	return true
}

// Pending reports whether the timer is still scheduled (not yet fired or
// stopped).
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// When returns the virtual time the timer is (or was) scheduled for.
func (t Timer) When() Time { return t.at }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*event)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Loop is a single-threaded discrete-event loop. It is not safe for
// concurrent use; all simulated components run inside its callbacks.
type Loop struct {
	now    Time
	seq    uint64
	events eventHeap
	// freeList recycles fired/stopped events; the loop is single-threaded,
	// so no synchronisation is needed.
	freeList *event
	// processed counts fired (non-cancelled) events, for diagnostics.
	processed uint64
	// recycled counts events served from the free list, for allocation
	// diagnostics and tests.
	recycled uint64
}

// NewLoop returns an empty loop at time zero.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events fired so far.
func (l *Loop) Processed() uint64 { return l.processed }

// Recycled returns the number of event objects reused from the free list.
func (l *Loop) Recycled() uint64 { return l.recycled }

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.events) }

// alloc takes an event from the free list, or heap-allocates on a cold
// start.
func (l *Loop) alloc() *event {
	if ev := l.freeList; ev != nil {
		l.freeList = ev.next
		ev.next = nil
		l.recycled++
		return ev
	}
	return &event{loop: l, index: -1}
}

// free recycles an event: the generation bump invalidates outstanding
// Timer handles before the object can be reused.
func (l *Loop) free(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	ev.next = l.freeList
	l.freeList = ev
}

// At schedules fn at absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (l *Loop) At(at Time, fn func()) Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	l.seq++
	ev := l.alloc()
	ev.at = at
	ev.seq = l.seq
	ev.fn = fn
	heap.Push(&l.events, ev)
	return Timer{ev: ev, gen: ev.gen, at: at}
}

// After schedules fn after duration d. Negative durations panic.
func (l *Loop) After(d Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return l.At(l.now.Add(d), fn)
}

// Step fires the next pending event, advancing virtual time to it. It
// reports whether an event was fired. The event object is recycled before
// its callback runs, so the callback can immediately reschedule without
// allocating.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	ev := heap.Pop(&l.events).(*event)
	l.now = ev.at
	l.processed++
	fn := ev.fn
	l.free(ev)
	fn()
	return true
}

// Run fires events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then sets the clock to the
// deadline (even if no event landed exactly there).
func (l *Loop) RunUntil(deadline Time) {
	for {
		next, ok := l.peek()
		if !ok || next > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunFor advances the clock by d, firing all events inside the window.
func (l *Loop) RunFor(d Duration) { l.RunUntil(l.now.Add(d)) }

// peek returns the time of the next event.
func (l *Loop) peek() (Time, bool) {
	if len(l.events) == 0 {
		return 0, false
	}
	return l.events[0].at, true
}
