// Package netsim is a discrete-event packet network simulator: links with
// configurable bandwidth, propagation delay and corruption loss; drop-tail
// and deadline-aware egress queues; hosts; and static routers. It stands in
// for the paper's physical substrate — the instrument DAQ Ethernet, the
// 10–100 ms RTT WAN, and the campus networks of Figs. 1–4 — so that
// experiments run on a laptop with exactly reproducible results.
//
// The simulator carries DMTP (or baseline TCP/UDP) packets as opaque frame
// payloads; addressing is out of band in the frame (wire.EncapNone), the
// way a P4 pipeline would see packets after parsing the carrier header.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Frame is a packet in flight through the simulated network.
type Frame struct {
	Src, Dst wire.Addr
	// Data is the serialized DMTP (or baseline transport) packet.
	Data []byte
	// Born is when the frame was first sent, for latency accounting.
	Born sim.Time
	// Hops counts forwarding elements traversed, guarding against loops.
	Hops int
}

// WireBytes returns the frame's size on the wire including the per-frame
// link overhead (Ethernet header + CRC + preamble + IPG equivalent).
func (f *Frame) WireBytes(overhead int) int { return len(f.Data) + overhead }

// MaxHops bounds frame forwarding to catch routing loops in topologies.
const MaxHops = 32

// DefaultOverhead is the default per-frame link overhead in bytes:
// 14 (Ethernet) + 4 (FCS) + 8 (preamble) + 12 (inter-packet gap).
const DefaultOverhead = 38

// Handler is the behaviour attached to a Node: a host transport endpoint, a
// router, or a programmable pipeline (internal/p4sim).
type Handler interface {
	// Attach is invoked once when the node joins the network.
	Attach(n *Node)
	// HandleFrame is invoked for every frame delivered to the node.
	// ingress is the port the frame arrived on.
	HandleFrame(ingress *Port, f *Frame)
}

// Node is a network element: a host NIC or a switch/router chassis.
type Node struct {
	Name    string
	Addr    wire.Addr // primary address; may be zero for pure switches
	Ports   []*Port
	Handler Handler
	Net     *Network
}

// Port returns the node's i'th port, panicking on a bad index with a
// message naming the node (topology bugs should fail loudly).
func (n *Node) Port(i int) *Port {
	if i < 0 || i >= len(n.Ports) {
		panic(fmt.Sprintf("netsim: node %q has %d ports, want port %d", n.Name, len(n.Ports), i))
	}
	return n.Ports[i]
}

// Send transmits a frame out of the node's only port. It panics if the node
// has more than one port (then the caller must choose a port explicitly).
func (n *Node) Send(f *Frame) {
	if len(n.Ports) != 1 {
		panic(fmt.Sprintf("netsim: node %q has %d ports; use Port(i).Send", n.Name, len(n.Ports)))
	}
	n.Ports[0].Send(f)
}

// SendTo builds and transmits a frame from this node's address.
func (n *Node) SendTo(dst wire.Addr, data []byte) {
	n.Send(&Frame{Src: n.Addr, Dst: dst, Data: data, Born: n.Net.Now()})
}

// PortStats are cumulative per-port counters.
type PortStats struct {
	TxFrames, TxBytes  uint64
	RxFrames, RxBytes  uint64
	DropsQueueFull     uint64
	DropsAgedEvicted   uint64 // frames evicted by the deadline-aware AQM
	DropsCorrupt       uint64 // frames lost to simulated bit corruption
	DropsRandom        uint64 // frames lost to the direct loss probability
	DropsFault         uint64 // frames dropped by the injected fault plan
	FaultCorrupted     uint64 // frames bit-flipped by the fault plan
	FaultDuplicated    uint64 // frames duplicated by the fault plan
	FaultDelayed       uint64 // frames delayed (reordered) by the fault plan
	QueueHighWatermark int
	BusyTime           time.Duration // cumulative serialization time
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second. Must be positive.
	RateBps float64
	// Delay is the propagation delay.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per frame.
	// Nonzero jitter reorders frames — the condition the DMTP receiver's
	// NAK delay (reorder tolerance) exists for.
	Jitter time.Duration
	// BER is the per-bit corruption probability; a corrupted frame is
	// dropped at the receiver (modelling an FCS failure), as happens to
	// DAQ traffic on capacity-planned WANs (paper §4: "It can
	// occasionally lose packets from corruption").
	BER float64
	// LossProb drops frames uniformly at random, for controlled
	// loss-sweep experiments.
	LossProb float64
	// QueueBytes is the egress queue capacity; 0 means 1 MiB.
	QueueBytes int
	// Overhead is per-frame wire overhead in bytes; 0 means DefaultOverhead.
	Overhead int
	// DeadlineAware enables the aged-frame-first eviction policy: when
	// the queue is full, a queued DMTP frame whose aged flag is set is
	// evicted before the incoming frame is dropped (paper §5.3: explicit
	// transport deadlines "provide … an input to active queue management").
	DeadlineAware bool
	// Fault, when non-nil, injects scripted faults (drop bursts, reorder,
	// duplication, corruption, flaps) per frame at delivery time — see
	// internal/faults for the deterministic plan that normally backs it.
	Fault FaultFunc
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.QueueBytes == 0 {
		c.QueueBytes = 1 << 20
	}
	if c.Overhead == 0 {
		c.Overhead = DefaultOverhead
	}
	return c
}

// Port is one end of a link: an egress queue plus serializer, and the
// ingress delivery point for the peer's transmissions.
type Port struct {
	Node  *Node
	Index int
	Peer  *Port
	Cfg   LinkConfig
	Stats PortStats

	queue      []*Frame
	queueBytes int
	busy       bool
}

// Send enqueues a frame for transmission out of this port, serializing at
// line rate and delivering to the peer after the propagation delay.
func (p *Port) Send(f *Frame) {
	if p.Peer == nil {
		panic(fmt.Sprintf("netsim: port %d of %q is not connected", p.Index, p.Node.Name))
	}
	size := f.WireBytes(p.Cfg.Overhead)
	if p.queueBytes+size > p.Cfg.QueueBytes {
		if p.Cfg.DeadlineAware && p.evictAged() && p.queueBytes+size <= p.Cfg.QueueBytes {
			// Space reclaimed from an aged frame; fall through to enqueue.
		} else {
			p.Stats.DropsQueueFull++
			p.Node.Net.observeDrop(p, f)
			return
		}
	}
	p.queue = append(p.queue, f)
	p.queueBytes += size
	if len(p.queue) > p.Stats.QueueHighWatermark {
		p.Stats.QueueHighWatermark = len(p.queue)
	}
	if !p.busy {
		p.transmitNext()
	}
}

// QueueDepth returns the current number of queued frames.
func (p *Port) QueueDepth() int { return len(p.queue) }

// QueueBytes returns the current number of queued bytes.
func (p *Port) QueueBytes() int { return p.queueBytes }

// evictAged drops the first queued frame whose DMTP aged flag is set,
// returning whether an eviction happened.
func (p *Port) evictAged() bool {
	for i, qf := range p.queue {
		v := wire.View(qf.Data)
		if _, err := v.Check(); err != nil || v.IsControl() {
			continue
		}
		age, err := v.Age()
		if err != nil || !age.Aged() {
			continue
		}
		p.queueBytes -= qf.WireBytes(p.Cfg.Overhead)
		p.queue = append(p.queue[:i], p.queue[i+1:]...)
		p.Stats.DropsAgedEvicted++
		p.Node.Net.observeDrop(p, qf)
		return true
	}
	return false
}

func (p *Port) transmitNext() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	p.busy = true
	f := p.queue[0]
	p.queue = p.queue[1:]
	size := f.WireBytes(p.Cfg.Overhead)
	p.queueBytes -= size
	serialize := time.Duration(float64(size*8) / p.Cfg.RateBps * float64(time.Second))
	p.Stats.BusyTime += serialize
	net := p.Node.Net
	op := net.getOp(&net.txFree, (*linkOp).runTx)
	op.port, op.f, op.size = p, f, size
	net.loop.After(serialize, op.run)
}

func (p *Port) deliver(f *Frame, size int) {
	net := p.Node.Net
	var extra time.Duration
	if p.Cfg.Fault != nil {
		d := p.Cfg.Fault(net.Now(), f)
		if d.Drop {
			p.Stats.DropsFault++
			net.observeDrop(p, f)
			return
		}
		if d.CorruptBit >= 0 && len(f.Data) > 0 {
			// Corrupt a copy: the original bytes may alias an upstream
			// retransmission buffer, which must keep the clean packet.
			cp := *f
			cp.Data = append([]byte(nil), f.Data...)
			bit := d.CorruptBit % (len(cp.Data) * 8)
			cp.Data[bit/8] ^= 1 << (bit % 8)
			f = &cp
			p.Stats.FaultCorrupted++
		}
		if d.Duplicate {
			p.Stats.FaultDuplicated++
			dup := *f
			dup.Data = append([]byte(nil), f.Data...)
			p.propagate(&dup, size, p.Cfg.Delay+d.ExtraDelay+time.Microsecond)
		}
		if d.ExtraDelay > 0 {
			p.Stats.FaultDelayed++
			extra = d.ExtraDelay
		}
	}
	if p.Cfg.LossProb > 0 && net.rng.Float64() < p.Cfg.LossProb {
		p.Stats.DropsRandom++
		net.observeDrop(p, f)
		return
	}
	if p.Cfg.BER > 0 {
		// Probability the frame survives size*8 independent bit trials.
		pSurvive := 1.0
		bits := float64(size * 8)
		// (1-BER)^bits via exp/log would drag in math; iterate cheaply
		// using the exact complement for small BER: P(corrupt) ≈ 1-(1-BER)^bits.
		pSurvive = pow1m(p.Cfg.BER, bits)
		if net.rng.Float64() > pSurvive {
			p.Stats.DropsCorrupt++
			net.observeDrop(p, f)
			return
		}
	}
	delay := p.Cfg.Delay + extra
	if p.Cfg.Jitter > 0 {
		delay += time.Duration(net.rng.Int63n(int64(p.Cfg.Jitter)))
	}
	p.propagate(f, size, delay)
}

// propagate delivers f to the peer after delay, counting ingress stats.
func (p *Port) propagate(f *Frame, size int, delay time.Duration) {
	net := p.Node.Net
	op := net.getOp(&net.rxFree, (*linkOp).runRx)
	op.port, op.f, op.size = p, f, size
	net.loop.After(delay, op.run)
}

// linkOp is a pooled per-link packet envelope: it carries a frame through a
// scheduled link stage (serialization completion or propagation arrival)
// without allocating a fresh closure per frame. The run closure is bound to
// the op once, when the op is first heap-allocated; afterwards the op cycles
// through a per-network free list, so the per-frame transmit and deliver
// schedules are allocation-free in steady state.
type linkOp struct {
	port *Port
	f    *Frame
	size int
	run  func() // == method value of runTx or runRx, built once
	next *linkOp
}

// release clears the op's frame references and returns it to its free list
// before the op's work runs, so re-entrant scheduling (transmitNext inside
// runTx) can reuse it immediately.
func (o *linkOp) release(head **linkOp) (p *Port, f *Frame, size int) {
	p, f, size = o.port, o.f, o.size
	o.port, o.f = nil, nil
	o.next = *head
	*head = o
	return p, f, size
}

// runTx fires when a frame finishes serializing out of its egress port.
func (o *linkOp) runTx() {
	p, f, size := o.release(&o.port.Node.Net.txFree)
	p.Stats.TxFrames++
	p.Stats.TxBytes += uint64(size)
	p.deliver(f, size)
	p.transmitNext()
}

// runRx fires when a frame arrives at the peer after propagation.
func (o *linkOp) runRx() {
	p, f, size := o.release(&o.port.Node.Net.rxFree)
	peer := p.Peer
	peer.Stats.RxFrames++
	peer.Stats.RxBytes += uint64(size)
	f.Hops++
	if f.Hops > MaxHops {
		panic(fmt.Sprintf("netsim: frame exceeded %d hops (routing loop?) at %q", MaxHops, peer.Node.Name))
	}
	peer.Node.Handler.HandleFrame(peer, f)
}

// pow1m computes (1-p)^n for small p without importing math.Pow precision
// concerns: it uses exp(n*log1p(-p)) via a short series adequate for BER
// magnitudes (≤1e-3) and frame sizes (≤1e5 bits).
func pow1m(p, n float64) float64 {
	// log(1-p) ≈ -p - p²/2 - p³/3 for small p.
	l := -(p + p*p/2 + p*p*p/3)
	x := n * l
	// exp(x) for x in (-∞, 0]; series is fine for |x| small, and for large
	// |x| the survival probability is effectively zero anyway.
	if x < -30 {
		return 0
	}
	// exp via squaring: exp(x) = (exp(x/2^k))^(2^k) with small-argument series.
	k := 0
	for x < -1e-3 && k < 40 {
		x /= 2
		k++
	}
	e := 1 + x + x*x/2 + x*x*x/6
	for i := 0; i < k; i++ {
		e *= e
	}
	return e
}

// FaultDecision is a fault-injection verdict for one frame, produced by a
// FaultFunc (normally an adapter over a faults.Plan).
type FaultDecision struct {
	// Drop discards the frame; Kind is a label for the injecting layer's
	// own accounting (netsim only counts DropsFault).
	Drop bool
	Kind string
	// Duplicate delivers the frame twice.
	Duplicate bool
	// CorruptBit, when ≥ 0, flips that bit (mod frame length) in a copy
	// of the frame before delivery.
	CorruptBit int
	// ExtraDelay postpones this frame's delivery, reordering it past
	// later frames on the link.
	ExtraDelay time.Duration
}

// FaultFunc is consulted once per frame at delivery time, on the virtual
// clock. It runs before the link's own stochastic loss models, so scripted
// faults are exact regardless of LossProb/BER settings.
type FaultFunc func(now sim.Time, f *Frame) FaultDecision

// DropObserver receives every dropped frame, letting experiments account
// for losses without scraping per-port counters.
type DropObserver func(p *Port, f *Frame)

// Network owns the event loop, the RNG, and the topology.
type Network struct {
	loop   *sim.Loop
	rng    *rand.Rand
	nodes  map[string]*Node
	byAddr map[wire.Addr]*Node
	onDrop []DropObserver

	// txFree and rxFree recycle the per-frame link ops; the loop is
	// single-threaded, so the lists need no synchronisation.
	txFree *linkOp
	rxFree *linkOp
}

// getOp pops an op from the given free list, or heap-allocates one with its
// run closure bound (the only allocation; every later cycle reuses it).
func (n *Network) getOp(head **linkOp, run func(*linkOp)) *linkOp {
	if op := *head; op != nil {
		*head = op.next
		op.next = nil
		return op
	}
	op := &linkOp{}
	op.run = func() { run(op) }
	return op
}

// New creates a network with a deterministic RNG seeded by seed.
func New(seed int64) *Network {
	return &Network{
		loop:   sim.NewLoop(),
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
		byAddr: make(map[wire.Addr]*Node),
	}
}

// Loop exposes the event loop for scheduling experiment logic.
func (n *Network) Loop() *sim.Loop { return n.loop }

// Now returns current virtual time.
func (n *Network) Now() sim.Time { return n.loop.Now() }

// Rand exposes the deterministic RNG (for workload generators that should
// share the experiment seed).
func (n *Network) Rand() *rand.Rand { return n.rng }

// OnDrop registers a drop observer.
func (n *Network) OnDrop(fn DropObserver) { n.onDrop = append(n.onDrop, fn) }

func (n *Network) observeDrop(p *Port, f *Frame) {
	for _, fn := range n.onDrop {
		fn(p, f)
	}
}

// AddNode creates a node with the given name, address and behaviour.
// Names and non-zero addresses must be unique.
func (n *Network) AddNode(name string, addr wire.Addr, h Handler) *Node {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node name %q", name))
	}
	node := &Node{Name: name, Addr: addr, Handler: h, Net: n}
	n.nodes[name] = node
	if !addr.IsZero() {
		if _, dup := n.byAddr[addr]; dup {
			panic(fmt.Sprintf("netsim: duplicate node address %v", addr))
		}
		n.byAddr[addr] = node
	}
	h.Attach(node)
	return node
}

// NodeByName returns a node by name, or nil.
func (n *Network) NodeByName(name string) *Node { return n.nodes[name] }

// NodeByAddr returns a node by primary address, or nil.
func (n *Network) NodeByAddr(a wire.Addr) *Node { return n.byAddr[a] }

// Connect joins a and b with a symmetric link configured by cfg, returning
// the two new ports (a's, then b's).
func (n *Network) Connect(a, b *Node, cfg LinkConfig) (*Port, *Port) {
	return n.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym joins a and b with per-direction configurations: ab governs
// frames a→b, ba governs b→a.
func (n *Network) ConnectAsym(a, b *Node, ab, ba LinkConfig) (*Port, *Port) {
	ab, ba = ab.withDefaults(), ba.withDefaults()
	if ab.RateBps <= 0 || ba.RateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	pa := &Port{Node: a, Index: len(a.Ports), Cfg: ab}
	pb := &Port{Node: b, Index: len(b.Ports), Cfg: ba}
	pa.Peer, pb.Peer = pb, pa
	a.Ports = append(a.Ports, pa)
	b.Ports = append(b.Ports, pb)
	return pa, pb
}

// Gbps converts gigabits per second to the bits-per-second rate LinkConfig
// expects.
func Gbps(g float64) float64 { return g * 1e9 }

// Mbps converts megabits per second to bits per second.
func Mbps(m float64) float64 { return m * 1e6 }
