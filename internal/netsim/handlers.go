package netsim

import (
	"fmt"

	"repro/internal/wire"
)

// Host is a single-NIC endpoint whose received frames are passed to a
// callback. Transport endpoints (internal/core, internal/baseline) embed or
// wrap a Host.
type Host struct {
	node *Node
	// Recv is invoked for every delivered frame. It may be nil, in which
	// case frames are counted but discarded.
	Recv func(f *Frame)
	// Received counts delivered frames.
	Received uint64
}

// Attach implements Handler.
func (h *Host) Attach(n *Node) { h.node = n }

// HandleFrame implements Handler.
func (h *Host) HandleFrame(_ *Port, f *Frame) {
	h.Received++
	if h.Recv != nil {
		h.Recv(f)
	}
}

// Node returns the node the host is attached to.
func (h *Host) Node() *Node { return h.node }

// Router is a static-routing forwarder: frames are forwarded out the port
// chosen by longest-match on destination address (exact address first, then
// a default). It models the plain border/WAN routers of Fig. 2 that today's
// DAQ traffic crosses without in-network transport support.
type Router struct {
	node        *Node
	routes      map[wire.Addr]int
	defaultPort int
	hasDefault  bool
	// Forwarded counts forwarded frames.
	Forwarded uint64
	// NoRoute counts frames dropped for lack of a route.
	NoRoute uint64
}

// NewRouter returns an empty router; add routes with Route and SetDefault.
func NewRouter() *Router {
	return &Router{routes: make(map[wire.Addr]int)}
}

// Attach implements Handler.
func (r *Router) Attach(n *Node) { r.node = n }

// Route installs an exact-match route: frames to dst leave via port index.
func (r *Router) Route(dst wire.Addr, port int) *Router {
	r.routes[dst] = port
	return r
}

// SetDefault installs the default route.
func (r *Router) SetDefault(port int) *Router {
	r.defaultPort, r.hasDefault = port, true
	return r
}

// Lookup returns the egress port index for dst and whether a route exists.
func (r *Router) Lookup(dst wire.Addr) (int, bool) {
	if p, ok := r.routes[dst]; ok {
		return p, true
	}
	if r.hasDefault {
		return r.defaultPort, true
	}
	return 0, false
}

// HandleFrame implements Handler.
func (r *Router) HandleFrame(ingress *Port, f *Frame) {
	out, ok := r.Lookup(f.Dst)
	if !ok {
		r.NoRoute++
		r.node.Net.observeDrop(ingress, f)
		return
	}
	if out == ingress.Index {
		// Forwarding back out the ingress port indicates a topology bug.
		panic(fmt.Sprintf("netsim: router %q would hairpin frame for %v on port %d", r.node.Name, f.Dst, out))
	}
	r.Forwarded++
	r.node.Port(out).Send(f)
}

// Sink is a handler that silently counts frames; useful as a stand-in for
// downstream infrastructure an experiment does not model.
type Sink struct {
	Count uint64
	Bytes uint64
}

// Attach implements Handler.
func (s *Sink) Attach(*Node) {}

// HandleFrame implements Handler.
func (s *Sink) HandleFrame(_ *Port, f *Frame) {
	s.Count++
	s.Bytes += uint64(len(f.Data))
}
