package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func twoHosts(t *testing.T, cfg LinkConfig) (*Network, *Host, *Host, *Node, *Node) {
	t.Helper()
	nw := New(1)
	ha, hb := &Host{}, &Host{}
	a := nw.AddNode("a", wire.AddrFrom(10, 0, 0, 1, 1), ha)
	b := nw.AddNode("b", wire.AddrFrom(10, 0, 0, 2, 1), hb)
	nw.Connect(a, b, cfg)
	return nw, ha, hb, a, b
}

func TestDeliveryLatencyMatchesSerializationPlusPropagation(t *testing.T) {
	cfg := LinkConfig{RateBps: Gbps(1), Delay: 5 * time.Millisecond, Overhead: 38}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	payload := make([]byte, 962) // 962+38 = 1000 bytes = 8000 bits on the wire
	var deliveredAt time.Duration
	hb.Recv = func(f *Frame) { deliveredAt = time.Duration(nw.Now()) }
	a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), payload)
	nw.Loop().Run()
	want := 8*time.Microsecond + 5*time.Millisecond // 8000 bits at 1 Gbps + prop
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestBackToBackFramesSerialize(t *testing.T) {
	cfg := LinkConfig{RateBps: Gbps(1), Delay: time.Millisecond, Overhead: 38}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	var times []time.Duration
	hb.Recv = func(f *Frame) { times = append(times, time.Duration(nw.Now())) }
	for i := 0; i < 3; i++ {
		a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), make([]byte, 962))
	}
	nw.Loop().Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d frames", len(times))
	}
	// Frames arrive spaced by serialization time (8 µs), all sharing one
	// propagation delay.
	if d := times[1] - times[0]; d != 8*time.Microsecond {
		t.Fatalf("spacing %v, want 8µs", d)
	}
	if d := times[2] - times[1]; d != 8*time.Microsecond {
		t.Fatalf("spacing %v, want 8µs", d)
	}
}

func TestQueueOverflowDropsTail(t *testing.T) {
	cfg := LinkConfig{RateBps: Mbps(1), Delay: 0, QueueBytes: 3000, Overhead: 0}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	for i := 0; i < 10; i++ {
		a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), make([]byte, 1000))
	}
	nw.Loop().Run()
	st := a.Port(0).Stats
	if st.DropsQueueFull == 0 {
		t.Fatal("no queue-full drops")
	}
	if hb.Received+st.DropsQueueFull != 10 {
		t.Fatalf("received %d + dropped %d != 10", hb.Received, st.DropsQueueFull)
	}
	if st.QueueHighWatermark == 0 {
		t.Fatal("high watermark not recorded")
	}
}

func TestRandomLossRate(t *testing.T) {
	cfg := LinkConfig{RateBps: Gbps(100), LossProb: 0.1, QueueBytes: 1 << 30}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	const n = 20000
	for i := 0; i < n; i++ {
		a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), make([]byte, 100))
	}
	nw.Loop().Run()
	got := float64(n-int(hb.Received)) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("loss rate %.4f, want ~0.10", got)
	}
}

func TestBERLossScalesWithFrameSize(t *testing.T) {
	run := func(size int) float64 {
		cfg := LinkConfig{RateBps: Gbps(100), BER: 1e-6, QueueBytes: 1 << 30, Overhead: 0}
		nw, _, hb, a, _ := twoHosts(t, cfg)
		const n = 5000
		for i := 0; i < n; i++ {
			a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), make([]byte, size))
		}
		nw.Loop().Run()
		return float64(n-int(hb.Received)) / n
	}
	small, big := run(100), run(9000)
	if big <= small {
		t.Fatalf("BER loss should grow with frame size: small=%.4f big=%.4f", small, big)
	}
	// Expected corruption probability for 9000B at BER 1e-6 ≈ 1-exp(-0.072) ≈ 6.9%.
	if math.Abs(big-0.069) > 0.02 {
		t.Fatalf("big-frame loss %.4f, want ≈0.069", big)
	}
}

func TestPow1mAgainstMath(t *testing.T) {
	for _, tc := range []struct{ p, n float64 }{
		{1e-9, 8000}, {1e-6, 72000}, {1e-4, 12000}, {1e-3, 800}, {0.5, 10},
	} {
		got := pow1m(tc.p, tc.n)
		want := math.Pow(1-tc.p, tc.n)
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("pow1m(%g,%g) = %g, want %g", tc.p, tc.n, got, want)
		}
	}
}

func TestRouterForwardsByAddress(t *testing.T) {
	nw := New(1)
	ha, hb := &Host{}, &Host{}
	addrA, addrB := wire.AddrFrom(10, 0, 0, 1, 1), wire.AddrFrom(10, 0, 0, 2, 1)
	a := nw.AddNode("a", addrA, ha)
	b := nw.AddNode("b", addrB, hb)
	r := NewRouter()
	rt := nw.AddNode("r", wire.Addr{}, r)
	nw.Connect(a, rt, LinkConfig{RateBps: Gbps(1)})
	nw.Connect(b, rt, LinkConfig{RateBps: Gbps(1)})
	r.Route(addrA, 0).Route(addrB, 1)
	a.SendTo(addrB, []byte("hi"))
	b.SendTo(addrA, []byte("yo"))
	nw.Loop().Run()
	if ha.Received != 1 || hb.Received != 1 {
		t.Fatalf("received a=%d b=%d", ha.Received, hb.Received)
	}
	if r.Forwarded != 2 {
		t.Fatalf("forwarded %d", r.Forwarded)
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	nw := New(1)
	ha := &Host{}
	a := nw.AddNode("a", wire.AddrFrom(10, 0, 0, 1, 1), ha)
	r := NewRouter()
	rt := nw.AddNode("r", wire.Addr{}, r)
	nw.Connect(a, rt, LinkConfig{RateBps: Gbps(1)})
	var drops int
	nw.OnDrop(func(p *Port, f *Frame) { drops++ })
	a.SendTo(wire.AddrFrom(99, 9, 9, 9, 9), []byte("lost"))
	nw.Loop().Run()
	if r.NoRoute != 1 || drops != 1 {
		t.Fatalf("NoRoute=%d drops=%d", r.NoRoute, drops)
	}
}

func TestDeadlineAwareAQMEvictsAgedFirst(t *testing.T) {
	// Queue fits exactly two frames; fill it with one aged and one fresh
	// DMTP frame while the port is busy, then offer a third.
	h := wire.Header{ConfigID: 1, Features: wire.FeatAgeTracked}
	h.Age.AgeMicros, h.Age.MaxAgeMicros, h.Age.Flags = 100, 50, wire.AgedFlag
	aged, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Age.Flags, h.Age.AgeMicros = 0, 0
	fresh, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	pad := func(b []byte) []byte { return append(b, make([]byte, 1000-len(b))...) }

	// Frames are 1000 B of data + the default 38 B overhead = 1038 wire
	// bytes; the queue fits exactly two.
	cfg := LinkConfig{RateBps: Mbps(1), QueueBytes: 2100, DeadlineAware: true}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	dst := wire.AddrFrom(10, 0, 0, 2, 1)
	var delivered [][]byte
	hb.Recv = func(f *Frame) { delivered = append(delivered, f.Data) }

	a.SendTo(dst, pad(fresh)) // starts transmitting immediately
	a.SendTo(dst, pad(aged))  // queued
	a.SendTo(dst, pad(fresh)) // queued; queue now full
	a.SendTo(dst, pad(fresh)) // must evict the aged frame
	nw.Loop().Run()

	st := a.Port(0).Stats
	if st.DropsAgedEvicted != 1 {
		t.Fatalf("aged evictions = %d", st.DropsAgedEvicted)
	}
	if len(delivered) != 3 {
		t.Fatalf("delivered %d frames", len(delivered))
	}
	for _, d := range delivered {
		age, err := wire.View(d).Age()
		if err != nil {
			t.Fatal(err)
		}
		if age.Aged() {
			t.Fatal("aged frame should have been evicted")
		}
	}
}

func TestDuplicateNamesAndAddressesPanic(t *testing.T) {
	nw := New(1)
	nw.AddNode("x", wire.AddrFrom(1, 1, 1, 1, 1), &Sink{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name accepted")
			}
		}()
		nw.AddNode("x", wire.AddrFrom(1, 1, 1, 1, 2), &Sink{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate address accepted")
			}
		}()
		nw.AddNode("y", wire.AddrFrom(1, 1, 1, 1, 1), &Sink{})
	}()
}

func TestLookupByNameAndAddr(t *testing.T) {
	nw := New(1)
	addr := wire.AddrFrom(7, 7, 7, 7, 7)
	n := nw.AddNode("n", addr, &Sink{})
	if nw.NodeByName("n") != n || nw.NodeByAddr(addr) != n {
		t.Fatal("lookup failed")
	}
	if nw.NodeByName("zz") != nil {
		t.Fatal("phantom node")
	}
}

func TestAsymmetricLink(t *testing.T) {
	nw := New(1)
	ha, hb := &Host{}, &Host{}
	a := nw.AddNode("a", wire.AddrFrom(10, 0, 0, 1, 1), ha)
	b := nw.AddNode("b", wire.AddrFrom(10, 0, 0, 2, 1), hb)
	nw.ConnectAsym(a, b,
		LinkConfig{RateBps: Gbps(1), Delay: time.Millisecond},
		LinkConfig{RateBps: Gbps(1), Delay: 50 * time.Millisecond})
	var tA, tB time.Duration
	ha.Recv = func(f *Frame) { tA = time.Duration(nw.Now()) }
	hb.Recv = func(f *Frame) { tB = time.Duration(nw.Now()) }
	a.SendTo(b.Addr, []byte("x"))
	b.SendTo(a.Addr, []byte("x"))
	nw.Loop().Run()
	if tB >= tA {
		t.Fatalf("a→b took %v, b→a took %v; asymmetry lost", tB, tA)
	}
}

func TestJitterReordersFrames(t *testing.T) {
	cfg := LinkConfig{RateBps: Gbps(100), Delay: time.Millisecond, Jitter: 500 * time.Microsecond}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	var order []int
	hb.Recv = func(f *Frame) { order = append(order, int(f.Data[0])) }
	for i := 0; i < 200; i++ {
		a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), []byte{byte(i)})
	}
	nw.Loop().Run()
	if len(order) != 200 {
		t.Fatalf("delivered %d", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("jitter produced no reordering")
	}
}

func TestLinkFaultHook(t *testing.T) {
	// Script per-packet verdicts by arrival index: drop #2, duplicate #3,
	// corrupt #4 (flip bit 0), delay #5 by 1 ms.
	idx := 0
	fault := func(now sim.Time, f *Frame) FaultDecision {
		idx++
		d := FaultDecision{CorruptBit: -1}
		switch idx {
		case 2:
			d.Drop, d.Kind = true, "test.drop"
		case 3:
			d.Duplicate = true
		case 4:
			d.CorruptBit = 0
		case 5:
			d.ExtraDelay = time.Millisecond
		}
		return d
	}
	cfg := LinkConfig{RateBps: Gbps(100), Delay: 10 * time.Microsecond, Fault: fault}
	nw, _, hb, a, _ := twoHosts(t, cfg)
	type arrival struct {
		at   time.Duration
		data byte
	}
	var got []arrival
	hb.Recv = func(f *Frame) { got = append(got, arrival{time.Duration(nw.Now()), f.Data[0]}) }
	for i := 1; i <= 5; i++ {
		a.SendTo(wire.AddrFrom(10, 0, 0, 2, 1), []byte{byte(i)})
	}
	nw.Loop().Run()

	st := a.Port(0).Stats
	if st.DropsFault != 1 || st.FaultDuplicated != 1 || st.FaultCorrupted != 1 || st.FaultDelayed != 1 {
		t.Fatalf("fault stats %+v", st)
	}
	// 5 offered - 1 dropped + 1 duplicated = 5 arrivals; the delayed
	// packet (payload 5) lands last, 1 ms after the rest.
	if len(got) != 5 {
		t.Fatalf("arrivals %v", got)
	}
	counts := map[byte]int{}
	for _, g := range got {
		counts[g.data]++
	}
	if counts[2] != 0 {
		t.Fatal("dropped packet delivered")
	}
	if counts[3] != 2 {
		t.Fatalf("duplicate count %d", counts[3])
	}
	// Payload 4 with bit 0 flipped arrives as 5; together with the genuine
	// (delayed) 5 that makes two arrivals of value 5 and none of 4.
	if counts[4] != 0 || counts[5] != 2 {
		t.Fatalf("corruption not applied: %v", counts)
	}
	last := got[len(got)-1]
	if last.data != 5 || last.at < time.Millisecond {
		t.Fatalf("delayed packet not last/late: %+v", last)
	}
}
