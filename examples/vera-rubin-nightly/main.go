// Vera Rubin nightly capture: bulk elephant flow + latency-critical alerts
// on the same path (paper §2.1: the alert stream bursts to 5.4 Gbps
// alongside the nightly 30 TB capture).
//
// The telescope streams image segments from Chile to a US facility over a
// 75 ms WAN while its alert stream rides the same links. Both are DMTP:
// the bulk stream runs the recoverable WAN mode; alerts carry a deadline
// and an age budget, and the deadline-aware AQM at the border protects
// them when the bulk stream fills queues.
//
//	go run ./examples/vera-rubin-nightly
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	nw := netsim.New(11)
	scopeAddr := wire.AddrFrom(10, 5, 0, 1, 4000)
	dtnAddr := wire.AddrFrom(10, 5, 1, 1, 7000)
	usAddr := wire.AddrFrom(10, 5, 2, 1, 7000)

	bulkLat := telemetry.NewHistogram()
	alertLat := telemetry.NewHistogram()
	var images, alerts, recovered int
	receiver := core.NewReceiver(nw, "usdf", usAddr, core.ReceiverConfig{
		NAKRetry: 200 * time.Millisecond,
		OnMessage: func(m core.Message) {
			var h daq.Header
			if _, err := h.DecodeFromBytes(m.Payload); err != nil {
				return
			}
			if m.Recovered {
				recovered++
			}
			if h.Flags&daq.FlagAlert != 0 {
				alerts++
				if m.Latency >= 0 {
					alertLat.ObserveDuration(m.Latency)
				}
			} else {
				images++
				if m.Latency >= 0 {
					bulkLat.ObserveDuration(m.Latency)
				}
			}
		},
	})

	dtn := core.NewBufferNode(nw, "base-dtn", dtnAddr, core.BufferConfig{
		UpgradeFrom:    core.ModeBare.ConfigID,
		Upgrade:        core.ModeWAN,
		Forward:        usAddr,
		ForwardPort:    1,
		MaxAge:         150 * time.Millisecond, // 2× the WAN crossing
		DeadlineBudget: 400 * time.Millisecond,
		DeadlineNotify: scopeAddr,
		CapacityBytes:  1 << 30,
		Routes:         map[wire.Addr]int{scopeAddr: 0},
	})

	fwd := p4sim.NewForwarder().Route(usAddr, 1).Route(dtnAddr, 0).Route(scopeAddr, 0)
	age := &p4sim.AgeTracker{PortDeltaMicros: map[int]uint32{p4sim.WildcardPort: 0}}
	sw := p4sim.NewSwitch(fwd, 400*time.Nanosecond, age, fwd)
	border := nw.AddNode("border", wire.Addr{}, sw)

	scope := core.NewSender(nw, "rubin", scopeAddr, core.SenderConfig{
		Experiment: 0x50B1, // Rubin
		Dst:        dtnAddr,
		Mode:       core.ModeBare,
	})

	nw.Connect(scope.Node(), dtn.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(40), Delay: 100 * time.Microsecond, QueueBytes: 64 << 20})
	nw.Connect(dtn.Node(), border, netsim.LinkConfig{
		RateBps: netsim.Gbps(40), Delay: 100 * time.Microsecond, QueueBytes: 64 << 20})
	// The WAN leg: deadline-aware AQM evicts aged bulk before fresh data.
	nw.Connect(border, receiver.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(40), Delay: 75 * time.Millisecond, LossProb: 1e-4,
		QueueBytes: 32 << 20, DeadlineAware: true})

	// The nightly stream: 1 MiB image segments every 2 ms (≈4.2 Gbps)
	// with ~4 alerts trailing each image.
	scope.Stream(daq.NewRubin(daq.DefaultRubin(400, 23)))
	nw.Loop().Run()

	fmt.Printf("telescope sent %d messages; DTN upgraded %d to mode %q\n",
		scope.Stats.Sent, dtn.Stats.Upgraded, core.ModeWAN.Name)
	fmt.Printf("delivered: %d image segments, %d alerts (%d recovered from the base DTN)\n",
		images, alerts, recovered)
	fmt.Printf("bulk  latency: %s\n", bulkLat)
	fmt.Printf("alert latency: %s\n", alertLat)
	fmt.Printf("aged deliveries: %d, deadline misses: %d\n",
		receiver.Stats.Aged, receiver.Stats.Late)
}
