// Partitioned instrument: two research groups share one detector (Req 8).
//
// Detectors may be partitioned for different simultaneous experiments by
// different researchers; the DMTP header's slice bits say which partition
// produced each datagram, so in-network counters and per-slice delivery
// work without payload inspection. Here slices 1 and 2 of a LArTPC stream
// through the same DTN and switch; the switch's per-slice counters and the
// receiver's per-slice accounting separate them purely from headers.
//
//	go run ./examples/partitioned-instrument
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

func main() {
	nw := netsim.New(5)
	sensorAddr := wire.AddrFrom(10, 7, 0, 1, 4000)
	dtnAddr := wire.AddrFrom(10, 7, 1, 1, 7000)
	dstAddr := wire.AddrFrom(10, 7, 2, 1, 7000)

	perSlice := map[uint8]int{}
	receiver := core.NewReceiver(nw, "facility", dstAddr, core.ReceiverConfig{
		OnMessage: func(m core.Message) {
			perSlice[m.Experiment.Slice()]++
		},
	})
	dtn := core.NewBufferNode(nw, "dtn1", dtnAddr, core.BufferConfig{
		UpgradeFrom: core.ModeBare.ConfigID,
		Upgrade:     core.ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      100 * time.Millisecond,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	fwd := p4sim.NewForwarder().Route(dstAddr, 1).Route(dtnAddr, 0).Route(sensorAddr, 0)
	sw := p4sim.NewSwitch(fwd, 400*time.Nanosecond, p4sim.ExperimentCounter{}, fwd)
	border := nw.AddNode("border", wire.Addr{}, sw)
	sensor := core.NewSender(nw, "detector", sensorAddr, core.SenderConfig{
		Experiment: 0xD0E,
		Dst:        dtnAddr,
		Mode:       core.ModeBare,
	})
	nw.Connect(sensor.Node(), dtn.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond})
	nw.Connect(dtn.Node(), border, netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 100 * time.Microsecond})
	nw.Connect(border, receiver.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Millisecond})

	// Group A runs a beam study on slice 1; group B hunts supernova
	// candidates on slice 2. One physical detector, one wire.
	groupA := daq.DefaultLArTPC(1, 300, 21)
	groupB := daq.DefaultSupernova(22)
	groupB.Slice = 2
	groupB.Duration = 200 * time.Millisecond
	groupB.PeakRateHz = 5000
	sensor.Stream(daq.NewMerge(daq.NewLArTPC(groupA), daq.NewSupernova(groupB)))
	nw.Loop().Run()

	fmt.Printf("one detector, one link, two experiments:\n\n")
	for slice, n := range map[uint8]string{1: "group A (beam study)", 2: "group B (supernova hunt)"} {
		fmt.Printf("  slice %d — %-25s delivered %4d messages\n", slice, n+":", perSlice[slice])
	}
	fmt.Println("\nper-slice counters at the border switch (header-only, Req 8):")
	for _, slice := range []int{1, 2} {
		name := fmt.Sprintf("exp/%d/slice/%d", 0xD0E, slice)
		c := sw.Pipeline.Ctx.Counter(name)
		fmt.Printf("  %-22s %6d packets  %9d bytes\n", name, c.Packets, c.Bytes)
	}
}
