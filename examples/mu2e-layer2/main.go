// Mu2e over layer 2: DMTP framed directly in Ethernet (Req 1).
//
// Mu2e carries DAQ data straight over Ethernet frames today (paper §4);
// DMTP supports the same: the core header rides on EtherType 0x88B5 with
// no IP or UDP underneath. This example frames Mu2e straw-tracker events
// in Ethernet+DMTP, passes them through the encapsulation-agnostic parser
// (wire.StripEncap), and shows the identical packet over IPv4 and UDP.
//
//	go run ./examples/mu2e-layer2
package main

import (
	"fmt"

	"repro/internal/daq"
	"repro/internal/wire"
)

func main() {
	// A Mu2e event record from the Poisson beam-event generator.
	src := daq.NewPoisson(daq.PoissonConfig{
		Detector:    daq.DetMu2e,
		MeanRateHz:  100_000,
		MessageSize: 2048,
		Count:       1,
		Seed:        3,
	})
	rec, _ := src.Next()

	// The DMTP header: mode 0, experiment tag only — what a front-end
	// board can emit (paper §5.2: "We envision instrument sensors
	// supporting this protocol from source, therefore the core header is
	// kept very simple").
	h := wire.Header{
		ConfigID:   0,
		Experiment: wire.NewExperimentID(0x302E, 0), // Mu2e
	}
	dmtp, err := h.AppendTo(nil)
	check(err)
	dmtp = append(dmtp, rec.Data...)

	// --- Layer 2: directly in an Ethernet frame.
	eth := wire.Ethernet{
		Dst:       wire.MAC{0x02, 0xDA, 0x05, 0x00, 0x00, 0x01},
		Src:       wire.MAC{0x02, 0xDA, 0x05, 0x00, 0x00, 0xFE},
		EtherType: wire.EtherTypeDMTP,
	}
	l2 := eth.AppendTo(nil)
	l2 = append(l2, dmtp...)
	fmt.Printf("layer-2 frame: %d bytes (%d Ethernet + %d DMTP header + %d payload)\n",
		len(l2), wire.EthernetHeaderLen, wire.CoreHeaderLen, len(rec.Data))

	// --- Layer 3: the same packet over IPv4 (protocol 0xFD).
	ip := wire.IPv4{TTL: 64, Protocol: wire.IPProtoDMTP,
		Src: [4]byte{10, 6, 0, 1}, Dst: [4]byte{10, 6, 0, 2}}
	l3, err := ip.AppendTo(nil, len(dmtp))
	check(err)
	l3 = append(l3, dmtp...)

	// --- Layer 4: over UDP (port 17580), the WAN-pragmatic framing.
	udp := wire.UDP{SrcPort: 4000, DstPort: wire.UDPPortDMTP}
	udpB, err := udp.AppendTo(nil, len(dmtp))
	check(err)
	udpB = append(udpB, dmtp...)
	l4, err := (&wire.IPv4{TTL: 64, Protocol: 17,
		Src: [4]byte{10, 6, 0, 1}, Dst: [4]byte{10, 6, 0, 2}}).AppendTo(nil, len(udpB))
	check(err)
	l4 = append(l4, udpB...)

	// One parser handles all three framings — the property that lets the
	// same network elements process DMTP wherever it appears.
	for _, frame := range [][]byte{l2, l3, l4} {
		v, encap, err := wire.StripEncap(frame)
		check(err)
		var mu2e daq.Header
		_, err = mu2e.DecodeFromBytes(v.Payload())
		check(err)
		fmt.Printf("  %-9v → DMTP %v, detector %v, event t=%d ns\n",
			encap, v.Experiment(), mu2e.Detector, mu2e.TimestampNs)
	}

	fmt.Println("\nSame 8-byte core header at every layer: Req 1 satisfied.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
