// Discovery + archive: the paper's §6 future-work items, end to end.
//
// Instead of the statically configured resource map the pilot
// "pre-supposes", the elements here *discover* each other: the DTN buffer
// and the border switch flood resource advertisements (the paper suggests
// piggy-backing on BGP; we flood hop by hop), the receiver-side agent
// assembles the map, and the planner derives the mode plan from it. The
// delivered waveforms are then transcoded into an HDF5-style hierarchical
// container (§6(2)) and read back bit-exact.
//
//	go run ./examples/discovery-archive
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/discovery"
	"repro/internal/h5lite"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/wire"
)

func main() {
	nw := netsim.New(3)
	sensorAddr := wire.AddrFrom(10, 8, 0, 1, 4000)
	dtnAddr := wire.AddrFrom(10, 8, 1, 1, 7000)
	dstAddr := wire.AddrFrom(10, 8, 2, 1, 7000)

	// --- Phase 1: stand up the elements, each with a discovery agent.
	arch := h5lite.NewArchiver(true)
	receiver := core.NewReceiverHandler(nw, core.ReceiverConfig{
		NAKRetry: 40 * time.Millisecond,
		OnMessage: func(m core.Message) {
			if err := arch.Archive(m.Payload); err != nil {
				fmt.Println("archive:", err)
			}
		},
	})
	dstAgent := discovery.NewAgent(discovery.Config{Interval: 5 * time.Millisecond, Rounds: 12})
	nw.AddNode("facility", dstAddr, discovery.NewWrap(receiver, dstAgent))

	dtn := core.NewBufferHandler(nw, core.BufferConfig{
		UpgradeFrom: core.ModeBare.ConfigID,
		Upgrade:     core.ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      200 * time.Millisecond,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})
	dtnAgent := discovery.NewAgent(discovery.Config{
		Self: wire.ResourceAdvert{
			Origin:        dtnAddr,
			Kind:          wire.AdvertKindBuffer,
			Segment:       0,
			CapacityBytes: 256 << 20,
		},
		Interval: 5 * time.Millisecond,
		Rounds:   12,
	})
	dtnNode := nw.AddNode("dtn1", dtnAddr, discovery.NewWrap(dtn, dtnAgent))

	fwd := p4sim.NewForwarder() // routes installed once ports exist
	sw := p4sim.NewSwitch(fwd, 400*time.Nanosecond, fwd)
	swAgent := discovery.NewAgent(discovery.Config{
		Self: wire.ResourceAdvert{
			Origin:  wire.AddrFrom(10, 8, 9, 1, 0),
			Kind:    wire.AdvertKindModeChanger,
			Segment: 1,
		},
		Interval: 5 * time.Millisecond,
		Rounds:   12,
	})
	swNode := nw.AddNode("border", wire.Addr{}, discovery.NewWrap(sw, swAgent))

	sensor := core.NewSender(nw, "sensor", sensorAddr, core.SenderConfig{
		Experiment: 0xA8C, Dst: dtnAddr, Mode: core.ModeBare,
	})
	nw.Connect(sensor.Node(), dtnNode, netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond, QueueBytes: 32 << 20})
	nw.Connect(swNode, dtnNode, netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond, QueueBytes: 32 << 20})
	nw.Connect(swNode, nw.NodeByAddr(dstAddr), netsim.LinkConfig{RateBps: netsim.Gbps(100), Delay: 15 * time.Millisecond, LossProb: 0.005, QueueBytes: 32 << 20})
	// Switch port 0 faces the DTN (and the sensor beyond it), port 1 the
	// facility.
	fwd.Route(dstAddr, 1).Route(dtnAddr, 0).Route(sensorAddr, 0)

	dtnAgent.Start()
	swAgent.Start()
	dstAgent.Start()
	nw.Loop().RunFor(30 * time.Millisecond) // let discovery converge

	// --- Phase 2: plan from the *discovered* map.
	segments := []core.Segment{
		{Name: "daq", RTT: 20 * time.Microsecond, RateBps: 100e9},
		{Name: "wan", RTT: 30 * time.Millisecond, RateBps: 100e9, LossProb: 0.005, Shared: true},
	}
	rmap := dstAgent.ResourceMap(segments)
	plans, err := core.Plan(rmap, core.PlanPolicy{})
	if err != nil {
		panic(err)
	}
	fmt.Println("discovered resources at the facility:")
	for _, e := range dstAgent.Snapshot() {
		fmt.Printf("  %v  kind=%d segment=%d (%d hops away)\n",
			e.Advert.Origin, e.Advert.Kind, e.Advert.Segment, e.Hops)
	}
	fmt.Println("derived mode plan:")
	for _, p := range plans {
		fmt.Printf("  %-6s → mode %q (buffer %v)\n", p.Segment.Name, p.Mode.Name, p.Buffer)
	}

	// --- Phase 3: stream waveforms and archive them at the destination.
	sensor.Stream(daq.NewLArTPC(daq.DefaultLArTPC(0, 200, 31)))
	nw.Loop().Run()

	enc := arch.File.Encode()
	back, err := h5lite.Decode(enc)
	if err != nil {
		panic(err)
	}
	var datasets int
	back.Walk(func(path string, d *h5lite.Dataset) { datasets++ })
	fmt.Printf("\narchived %d waveform messages into a %d-byte container (%d datasets)\n",
		arch.Archived, len(enc), datasets)
	ds, err := back.Open("/run1/slice0/msg0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("first frame: %v %v dataset, trigger primitives attr present: %v\n",
		ds.Dims, ds.Type, len(ds.Attrs) > 0)
}
