// Quickstart: the smallest end-to-end DMTP pipeline.
//
// A sensor streams 500 detector messages in mode 0; the first-line DTN
// upgrades them into the recoverable WAN mode, buffers them, and forwards
// them across a lossy 15 ms WAN; the receiver detects the losses from
// sequence gaps, NAKs the DTN buffer named in each packet's header, and
// delivers every message.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func main() {
	nw := netsim.New(42)

	sensorAddr := wire.AddrFrom(10, 0, 0, 1, 4000)
	dtnAddr := wire.AddrFrom(10, 0, 1, 1, 7000)
	dstAddr := wire.AddrFrom(10, 0, 2, 1, 7000)

	// The destination: NAK-based recovery plus message delivery.
	var delivered, recovered int
	receiver := core.NewReceiver(nw, "receiver", dstAddr, core.ReceiverConfig{
		NAKRetry: 40 * time.Millisecond,
		OnMessage: func(m core.Message) {
			delivered++
			if m.Recovered {
				recovered++
			}
		},
	})

	// The first-line DTN: mode upgrade + retransmission buffer.
	dtn := core.NewBufferNode(nw, "dtn1", dtnAddr, core.BufferConfig{
		UpgradeFrom: core.ModeBare.ConfigID,
		Upgrade:     core.ModeWAN,
		Forward:     dstAddr,
		ForwardPort: 1,
		MaxAge:      200 * time.Millisecond,
		Routes:      map[wire.Addr]int{sensorAddr: 0},
	})

	// The instrument: emits bare mode-0 datagrams; no source buffering.
	sensor := core.NewSender(nw, "sensor", sensorAddr, core.SenderConfig{
		Experiment: 42,
		Dst:        dtnAddr,
		Mode:       core.ModeBare,
	})

	nw.Connect(sensor.Node(), dtn.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(100), Delay: 10 * time.Microsecond})
	nw.Connect(dtn.Node(), receiver.Node(), netsim.LinkConfig{
		RateBps: netsim.Gbps(100), Delay: 15 * time.Millisecond, LossProb: 0.01})

	// Stream a synthetic LArTPC waveform readout.
	sensor.Stream(daq.NewLArTPC(daq.DefaultLArTPC(0, 500, 7)))
	nw.Loop().Run()

	fmt.Printf("sent      %d messages (mode %q)\n", sensor.Stats.Sent, core.ModeBare.Name)
	fmt.Printf("upgraded  %d at the DTN (mode %q: features %v)\n",
		dtn.Stats.Upgraded, core.ModeWAN.Name, core.ModeWAN.Features)
	fmt.Printf("delivered %d (%d recovered via %d NAKs served by the DTN buffer)\n",
		delivered, recovered, dtn.Stats.NAKs)
	fmt.Printf("losses remaining: %d\n", receiver.Stats.Lost)
	fmt.Printf("origin→delivery latency: %v\n", receiver.LatencyHist)
}
