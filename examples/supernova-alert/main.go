// Supernova alert: the paper's flagship integration scenario (Req 10).
//
// A supernova burst detected in DUNE (South Dakota) must alert the Vera
// Rubin observatory (Chile) and two analysis sites on where to expect
// photons — neutrinos escape the collapsing star before photons are
// emitted, so minutes matter. The alert stream travels in DMTP's alert
// mode; the WAN border switch duplicates it in-network toward every
// subscriber, so nobody waits behind the storage facility.
//
//	go run ./examples/supernova-alert
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daq"
	"repro/internal/netsim"
	"repro/internal/p4sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	nw := netsim.New(7)
	duneAddr := wire.AddrFrom(10, 1, 0, 1, 4000)

	subscribers := []struct {
		name  string
		addr  wire.Addr
		delay time.Duration // one-way WAN distance from DUNE's border
	}{
		{"vera-rubin (Chile)", wire.AddrFrom(10, 2, 0, 1, 7000), 75 * time.Millisecond},
		{"fermilab", wire.AddrFrom(10, 3, 0, 1, 7000), 12 * time.Millisecond},
		{"cern", wire.AddrFrom(10, 4, 0, 1, 7000), 55 * time.Millisecond},
	}

	// The border switch duplicates alert-mode packets toward the group.
	fwd := p4sim.NewForwarder()
	dup := p4sim.NewDuplicator()
	sw := p4sim.NewSwitch(fwd, 400*time.Nanosecond, dup, fwd)
	border := nw.AddNode("dune-border", wire.Addr{}, sw)

	type sub struct {
		name string
		hist *telemetry.Histogram
	}
	var subs []*sub
	for i, s := range subscribers {
		st := &sub{name: s.name, hist: telemetry.NewHistogram()}
		subs = append(subs, st)
		rcv := core.NewReceiver(nw, s.name, s.addr, core.ReceiverConfig{
			OnMessage: func(m core.Message) {
				if m.Latency >= 0 {
					st.hist.ObserveDuration(m.Latency)
				}
			},
		})
		nw.Connect(border, rcv.Node(), netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: s.delay})
		fwd.Route(s.addr, len(border.Ports)-1)
		if i > 0 {
			// The primary copy routes to subscriber 0; the rest are
			// duplicated in the data plane.
			dup.Group(1, p4sim.Copy{Port: -1, Dst: s.addr})
		}
	}

	dune := core.NewSender(nw, "dune", duneAddr, core.SenderConfig{
		Experiment:     0xD0E, // DUNE
		Dst:            subscribers[0].addr,
		Mode:           core.ModeAlert,
		DupGroup:       1,
		DupScope:       1,
		DeadlineBudget: 200 * time.Millisecond,
	})
	nw.Connect(dune.Node(), border, netsim.LinkConfig{RateBps: netsim.Gbps(10), Delay: 100 * time.Microsecond})
	fwd.Route(duneAddr, len(border.Ports)-1)

	// The burst: a decaying shower of neutrino-interaction records.
	burst := daq.DefaultSupernova(99)
	burst.PeakRateHz = 500
	burst.Duration = 3 * time.Second
	dune.Stream(daq.NewSupernova(burst))
	nw.Loop().Run()

	fmt.Printf("supernova burst: %d interaction records in DMTP mode %q (%v)\n",
		dune.Stats.Sent, core.ModeAlert.Name, core.ModeAlert.Features)
	fmt.Printf("in-network duplications at the border: %d\n\n", dup.Duplicated)
	for _, s := range subs {
		fmt.Printf("  %-20s %s\n", s.name+":", s.hist)
	}
	fmt.Println("\nEvery subscriber hears about the burst one direct WAN crossing after")
	fmt.Println("detection — no detour through a storage facility, no TCP termination.")
}
